"""The stream scheduler is observationally invisible (repro.core.stream).

Differential harness: the same CC instruction sequence is executed on two
fresh, identically-seeded machines — one instruction at a time through
``ComputeCacheMachine.cc`` versus batched through
``ComputeCacheMachine.cc_stream`` — and *everything* observable must be
bit-identical: per-instruction ``CCResult`` fields, architectural memory,
the energy ledger, controller statistics (modulo decode-memo hit
counters, which only count uncounted probes), and the full event stream.
The hypothesis case mixes fusable and non-fusable opcodes, page-spanning
and misaligned operands, data-dependent reuse of the same slots, and
cold/L3/private warming, so both the fused path and every fallback to
the sequential path are exercised.
"""

import random
from dataclasses import asdict, astuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine, cc_ops
from repro.core.stream import CCInstructionStream, CCOccupancyTimeline
from repro.params import BLOCK_SIZE, PAGE_SIZE, small_test_machine

SLOTS = 4
SLOT_BYTES = 2 * PAGE_SIZE
SLOT_BLOCKS = SLOT_BYTES // BLOCK_SIZE

#: Stats fields that may legitimately differ: they count hits in the
#: decode memos, and the stream performs extra (uncounted, invisible)
#: level/hazard probes while sizing fusion groups.
MEMO_STATS = ("level_memo_hits", "hazard_memo_hits")

OPS = ["and", "or", "xor", "copy", "not", "buz", "cmp", "search"]


def build_instr(op, a, b, c, size):
    if op == "and":
        return cc_ops.cc_and(a, b, c, size)
    if op == "or":
        return cc_ops.cc_or(a, b, c, size)
    if op == "xor":
        return cc_ops.cc_xor(a, b, c, size)
    if op == "copy":
        return cc_ops.cc_copy(a, c, size)
    if op == "not":
        return cc_ops.cc_not(a, c, size)
    if op == "buz":
        return cc_ops.cc_buz(c, size)
    if op == "cmp":
        return cc_ops.cc_cmp(a, b, size)
    if op == "search":
        return cc_ops.cc_search(a, b, size)  # b is the 64-byte key block
    raise AssertionError(op)


def fresh_machine(warm):
    """A machine with SLOTS page-aligned slots of identical random data,
    each warmed per ``warm`` ("cold" | "l3" | "touch")."""
    m = ComputeCacheMachine(small_test_machine(), trace_events=True)
    rng = random.Random(0xBEEF)
    slots = [m.arena.alloc_page_aligned(SLOT_BYTES) for _ in range(SLOTS)]
    for slot in slots:
        m.load(slot, rng.randbytes(SLOT_BYTES))
    for slot, how in zip(slots, warm):
        if how == "l3":
            m.warm_l3(slot, SLOT_BYTES)
        elif how == "touch":
            m.touch_range(slot, SLOT_BYTES)
    return m, slots


def materialize(specs, slots):
    instrs = []
    for op, sa, sb, sc, offs, blocks in specs:
        size = blocks * BLOCK_SIZE
        off_a, off_b, off_c = (min(o, SLOT_BLOCKS - blocks) * BLOCK_SIZE
                               for o in offs)
        instrs.append(build_instr(
            op, slots[sa] + off_a,
            slots[sb] if op == "search" else slots[sb] + off_b,
            slots[sc] + off_c, size))
    return instrs


def assert_identical(m_seq, m_str, res_seq, res_str, slots):
    assert len(res_seq) == len(res_str)
    for ra, rb in zip(res_seq, res_str):
        assert astuple(ra) == astuple(rb)
    for slot in slots:
        assert m_seq.peek(slot, SLOT_BYTES) == m_str.peek(slot, SLOT_BYTES)
    assert dict(m_seq.ledger.pj) == dict(m_str.ledger.pj)
    stats_seq = asdict(m_seq.controllers[0].stats)
    stats_str = asdict(m_str.controllers[0].stats)
    for key in MEMO_STATS:
        stats_seq.pop(key)
        stats_str.pop(key)
    assert stats_seq == stats_str
    events_seq = [astuple(e) for e in m_seq.tracer.events]
    events_str = [astuple(e) for e in m_str.tracer.events]
    assert events_seq == events_str


def run_differential(specs, warm, window, **execute_kwargs):
    m_seq, slots = fresh_machine(warm)
    m_str, slots_str = fresh_machine(warm)
    assert slots == slots_str  # deterministic arena
    instrs = materialize(specs, slots)
    res_seq = [m_seq.cc(instr, **execute_kwargs) for instr in instrs]
    out = m_str.cc_stream(instrs, window=window, **execute_kwargs)
    assert_identical(m_seq, m_str, res_seq, out.results, slots)
    return m_seq, m_str, out


class TestStreamEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(OPS),
                st.integers(0, SLOTS - 1),
                st.integers(0, SLOTS - 1),
                st.integers(0, SLOTS - 1),
                st.tuples(*(st.integers(0, SLOT_BLOCKS - 1),) * 3),
                st.integers(1, 8),
            ),
            min_size=1, max_size=10,
        ),
        st.lists(st.sampled_from(["cold", "l3", "touch"]),
                 min_size=SLOTS, max_size=SLOTS),
        st.integers(2, 8),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_stream_is_bit_identical_to_sequential(self, specs, warm, window):
        run_differential(specs, warm, window)

    def test_force_nearplace_falls_back_and_matches(self):
        specs = [("xor", 0, 1, 2, (0, 0, 0), 4),
                 ("and", 1, 2, 3, (8, 8, 8), 4)]
        _, _, out = run_differential(specs, ["l3"] * SLOTS, 8,
                                     force_nearplace=True)
        assert out.fused_instructions == 0

    def test_contention_pin_loss_matches(self):
        """With a contention hook installed the stream must disable fusion
        and still reproduce the sequential retry path exactly."""
        m_seq, slots = fresh_machine(["l3"] * SLOTS)
        m_str, _ = fresh_machine(["l3"] * SLOTS)

        def make_hook():
            steals = [0]

            def hook(addr):
                steals[0] += 1
                return steals[0] <= 2  # first two pin checks are stolen

            return hook

        m_seq.controllers[0].contention_hook = make_hook()
        m_str.controllers[0].contention_hook = make_hook()
        instrs = materialize([("xor", 0, 1, 2, (0, 0, 0), 4),
                              ("copy", 1, 0, 3, (4, 4, 4), 2)], slots)
        res_seq = [m_seq.cc(instr) for instr in instrs]
        out = m_str.cc_stream(instrs)
        assert out.fused_instructions == 0
        assert m_seq.controllers[0].stats.pin_retries > 0
        assert_identical(m_seq, m_str, res_seq, out.results, slots)


class TestStreamFusion:
    def _disjoint_stream(self, n, size=512, op="xor"):
        m = ComputeCacheMachine(small_test_machine(), trace_events=True)
        rng = random.Random(7)
        instrs = []
        for _ in range(n):
            a, b, c = m.arena.alloc_colocated(size, 3)
            m.load(a, rng.randbytes(size))
            m.load(b, rng.randbytes(size))
            instrs.append(build_instr(op, a, b, c, size))
            for addr in (a, b, c):
                m.warm_l3(addr, size)
        return m, instrs

    def test_disjoint_stream_fuses(self):
        m, instrs = self._disjoint_stream(4)
        out = m.cc_stream(instrs)
        assert out.fused_instructions == 4
        assert out.fused_groups == 1
        assert out.kernel_calls >= 1
        assert out.fused_fraction == 1.0
        assert out.instructions == 4
        assert out.simulated_bytes == 4 * 512

    def test_window_bounds_group_size(self):
        m, instrs = self._disjoint_stream(4)
        out = m.cc_stream(instrs, window=2)
        assert out.fused_instructions == 4
        assert out.fused_groups == 2

    def test_window_one_disables_fusion(self):
        m, instrs = self._disjoint_stream(3)
        out = m.cc_stream(instrs, window=1)
        assert out.fused_instructions == 0
        assert out.instructions == 3

    def test_single_instruction_not_fused(self):
        m, instrs = self._disjoint_stream(1)
        out = m.cc_stream(instrs)
        assert out.fused_instructions == 0

    def test_non_fusable_opcode_falls_back(self):
        m = ComputeCacheMachine(small_test_machine())
        size = 512
        data, key, _ = m.arena.alloc_colocated(size, 3)
        m.load(data, b"\x11" * size)
        m.load(key, b"\x11" * 64)
        m.warm_l3(data, size)
        m.warm_l3(key, 64)
        out = m.cc_stream([cc_ops.cc_search(data, key, size)] * 2)
        assert out.fused_instructions == 0
        assert out.instructions == 2

    def test_dependent_instructions_do_not_fuse_together(self):
        """c = a^b then d = c^a share blocks: they may not share a group."""
        m = ComputeCacheMachine(small_test_machine())
        size = 512
        a, b, c, d = m.arena.alloc_colocated(size, 4)
        rng = random.Random(9)
        m.load(a, rng.randbytes(size))
        m.load(b, rng.randbytes(size))
        for addr in (a, b, c, d):
            m.warm_l3(addr, size)
        out = m.cc_stream([cc_ops.cc_xor(a, b, c, size),
                           cc_ops.cc_xor(c, a, d, size)])
        assert out.fused_groups == 0
        from repro.bitops import bytes_xor
        pa, pb = m.peek(a, size), m.peek(b, size)
        assert m.peek(c, size) == bytes_xor(pa, pb)
        assert m.peek(d, size) == bytes_xor(bytes_xor(pa, pb), pa)

    def test_overlap_model(self):
        m, instrs = self._disjoint_stream(6)
        out = m.cc_stream(instrs)
        assert 0.0 < out.overlapped_cycles <= out.serial_cycles
        assert out.overlap_speedup >= 1.0
        assert out.serial_cycles == sum(r.cycles for r in out.results)

    def test_window_clamped_to_instruction_table(self):
        m = ComputeCacheMachine(small_test_machine())
        stream = CCInstructionStream(m.controllers[0], window=64)
        assert stream.window == m.controllers[0].instruction_table.capacity


class TestSpeedBench:
    def test_run_speed_document_and_contracts(self):
        from repro.bench.speed import SPEED_SCHEMA, SpeedConfig, run_speed, \
            summarize

        cfg = SpeedConfig(kernel="xor", size=512, instructions=4, passes=1,
                          backends=("packed",))
        doc = run_speed(cfg)
        assert doc["schema"] == SPEED_SCHEMA
        assert "provenance" in doc
        packed = doc["backends"]["packed"]
        assert packed["bit_identical"] is True
        assert packed["stream"]["instructions"] == 4
        assert packed["stream"]["simulated_bytes_per_s"] == \
            packed["stream"]["instructions_per_s"] * 512
        assert doc["contract"]["passed"] is True
        assert "speed: kernel=xor" in summarize(doc)

        # An unreachable min-speedup contract must fail the document.
        failing = run_speed(SpeedConfig(kernel="xor", size=512,
                                        instructions=4, passes=1,
                                        backends=("packed",),
                                        min_speedup=1e9))
        assert failing["contract"]["passed"] is False
        assert failing["contract"]["failures"]

    def test_baseline_regression_contract(self):
        from repro.bench.speed import SpeedConfig, run_speed

        base = {"backends": {"packed": {"stream":
                                        {"instructions_per_s": 1e12}}}}
        doc = run_speed(SpeedConfig(kernel="copy", size=512, instructions=2,
                                    passes=1, backends=("packed",),
                                    baseline=base, tolerance=0.2))
        assert doc["contract"]["passed"] is False
        assert any("below the committed baseline" in f
                   for f in doc["contract"]["failures"])

    def test_unknown_kernel_rejected(self):
        import pytest

        from repro.bench.speed import SpeedConfig, run_speed
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown speed kernel"):
            run_speed(SpeedConfig(kernel="nope"))


class TestOccupancyTimeline:
    def test_issue_serializes_occupancy(self):
        tl = CCOccupancyTimeline()
        assert tl.issue(0.0, 10.0, 100.0) == 0.0
        # Second instruction queues behind the first's occupancy, not its
        # full completion.
        assert tl.issue(0.0, 10.0, 50.0) == 10.0
        assert tl.busy_until == 20.0
        assert tl.drain_target == 100.0

    def test_min_occupancy_is_one_cycle(self):
        tl = CCOccupancyTimeline()
        tl.issue(0.0, 0.0, 0.0)
        assert tl.busy_until == 1.0

    def test_issue_after_idle_starts_at_now(self):
        tl = CCOccupancyTimeline()
        tl.issue(0.0, 5.0, 5.0)
        assert tl.issue(42.0, 5.0, 5.0) == 42.0
        assert tl.drain_target == 47.0
