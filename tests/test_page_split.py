"""Page-span exception handler tests (Section IV-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import MIXED_LEVEL
from repro.core.exceptions import split_by_pages
from repro.core.isa import cc_and, cc_buz, cc_copy, cc_search
from repro.errors import PageSpanError
from repro.params import BLOCK_SIZE, PAGE_SIZE


class TestSplitByPages:
    def test_no_split_needed(self):
        instr = cc_copy(0x1000, 0x3000, 4096)
        assert split_by_pages(instr) == [instr]

    def test_single_crossing(self):
        instr = cc_copy(PAGE_SIZE - 128, 3 * PAGE_SIZE - 128, 256)
        pieces = split_by_pages(instr)
        assert len(pieces) == 2
        assert [p.size for p in pieces] == [128, 128]
        for piece in pieces:
            assert not piece.spans_page_boundary()

    def test_misaligned_operands_multiple_cuts(self):
        """Operands at different page offsets need cuts from both."""
        instr = cc_and(PAGE_SIZE - 192, 2 * PAGE_SIZE - 64, 4 * PAGE_SIZE, 256)
        pieces = split_by_pages(instr)
        assert sum(p.size for p in pieces) == 256
        for piece in pieces:
            assert not piece.spans_page_boundary()

    def test_split_disabled_raises(self):
        instr = cc_copy(PAGE_SIZE - 64, 3 * PAGE_SIZE - 64, 128)
        with pytest.raises(PageSpanError):
            split_by_pages(instr, allow_split=False)

    def test_search_key_kept_intact(self):
        instr = cc_search(PAGE_SIZE - 256, 8 * PAGE_SIZE, 512)
        pieces = split_by_pages(instr)
        assert len(pieces) == 2
        assert all(p.src2 == 8 * PAGE_SIZE for p in pieces)

    @given(
        st.integers(0, 4 * PAGE_SIZE // BLOCK_SIZE - 1),
        st.integers(0, 4 * PAGE_SIZE // BLOCK_SIZE - 1),
        st.integers(1, 64),
    )
    @settings(max_examples=60)
    def test_pieces_reassemble(self, src_blk, dst_blk, blocks):
        src = src_blk * BLOCK_SIZE
        dst = 16 * PAGE_SIZE + dst_blk * BLOCK_SIZE
        size = blocks * BLOCK_SIZE
        instr = cc_copy(src, dst, size)
        pieces = split_by_pages(instr)
        assert sum(p.size for p in pieces) == size
        cursor_src, cursor_dst = src, dst
        for piece in pieces:
            assert piece.src1 == cursor_src
            assert piece.dest == cursor_dst
            assert not piece.spans_page_boundary()
            cursor_src += piece.size
            cursor_dst += piece.size


class TestMixedLevelReport:
    """A page-split instruction whose pieces compute at different cache
    levels must report level="mixed", not whichever piece ran last."""

    def test_pieces_at_different_levels_report_mixed(self, machine):
        base = machine.arena.alloc_page_aligned(2 * PAGE_SIZE)
        lo = base + PAGE_SIZE - BLOCK_SIZE   # last block of page 0
        hi = base + PAGE_SIZE                # first block of page 1
        machine.touch_range(lo, BLOCK_SIZE)  # piece 1 resident in L1
        machine.warm_l3(hi, BLOCK_SIZE)      # piece 2 resident in L3 only
        res = machine.cc(cc_buz(lo, 2 * BLOCK_SIZE))
        assert res.pieces == 2
        assert res.level == MIXED_LEVEL

    def test_pieces_at_one_level_report_that_level(self, machine):
        base = machine.arena.alloc_page_aligned(2 * PAGE_SIZE)
        lo = base + PAGE_SIZE - BLOCK_SIZE
        machine.warm_l3(lo, 2 * BLOCK_SIZE)
        res = machine.cc(cc_buz(lo, 2 * BLOCK_SIZE))
        assert res.pieces == 2
        assert res.level == "L3"
