"""Page-span exception handler tests (Section IV-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import split_by_pages
from repro.core.isa import cc_and, cc_copy, cc_search
from repro.errors import PageSpanError
from repro.params import BLOCK_SIZE, PAGE_SIZE


class TestSplitByPages:
    def test_no_split_needed(self):
        instr = cc_copy(0x1000, 0x3000, 4096)
        assert split_by_pages(instr) == [instr]

    def test_single_crossing(self):
        instr = cc_copy(PAGE_SIZE - 128, 3 * PAGE_SIZE - 128, 256)
        pieces = split_by_pages(instr)
        assert len(pieces) == 2
        assert [p.size for p in pieces] == [128, 128]
        for piece in pieces:
            assert not piece.spans_page_boundary()

    def test_misaligned_operands_multiple_cuts(self):
        """Operands at different page offsets need cuts from both."""
        instr = cc_and(PAGE_SIZE - 192, 2 * PAGE_SIZE - 64, 4 * PAGE_SIZE, 256)
        pieces = split_by_pages(instr)
        assert sum(p.size for p in pieces) == 256
        for piece in pieces:
            assert not piece.spans_page_boundary()

    def test_split_disabled_raises(self):
        instr = cc_copy(PAGE_SIZE - 64, 3 * PAGE_SIZE - 64, 128)
        with pytest.raises(PageSpanError):
            split_by_pages(instr, allow_split=False)

    def test_search_key_kept_intact(self):
        instr = cc_search(PAGE_SIZE - 256, 8 * PAGE_SIZE, 512)
        pieces = split_by_pages(instr)
        assert len(pieces) == 2
        assert all(p.src2 == 8 * PAGE_SIZE for p in pieces)

    @given(
        st.integers(0, 4 * PAGE_SIZE // BLOCK_SIZE - 1),
        st.integers(0, 4 * PAGE_SIZE // BLOCK_SIZE - 1),
        st.integers(1, 64),
    )
    @settings(max_examples=60)
    def test_pieces_reassemble(self, src_blk, dst_blk, blocks):
        src = src_blk * BLOCK_SIZE
        dst = 16 * PAGE_SIZE + dst_blk * BLOCK_SIZE
        size = blocks * BLOCK_SIZE
        instr = cc_copy(src, dst, size)
        pieces = split_by_pages(instr)
        assert sum(p.size for p in pieces) == size
        cursor_src, cursor_dst = src, dst
        for piece in pieces:
            assert piece.src1 == cursor_src
            assert piece.dest == cursor_dst
            assert not piece.spans_page_boundary()
            cursor_src += piece.size
            cursor_dst += piece.size
