"""Shared fixtures for the test-suite.

Most tests run on :func:`repro.params.small_test_machine`, a shrunken
configuration that preserves the geometry ratios (banks, block partitions,
way-to-partition mapping) of the paper's Table IV machine, so operand
locality and coherence behave identically while staying fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ComputeCacheMachine
from repro.params import sandybridge_8core, small_test_machine


@pytest.fixture
def small_config():
    return small_test_machine()


@pytest.fixture
def paper_config():
    return sandybridge_8core()


@pytest.fixture
def machine(small_config):
    """A small machine, fresh per test."""
    return ComputeCacheMachine(small_config)


@pytest.fixture
def paper_machine():
    """The full Table IV machine (slower; use sparingly)."""
    return ComputeCacheMachine(sandybridge_8core())


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


def random_bytes(rng, n: int) -> bytes:
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


@pytest.fixture
def make_bytes(rng):
    def _make(n: int) -> bytes:
        return random_bytes(rng, n)

    return _make
