"""Core model and baseline-kernel tests."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cpu import simd
from repro.cpu.program import Instr, InstrKind, Program
from repro.energy.accounting import Component


class TestCoreModel:
    def test_scalar_ops_cost_one_cycle(self, machine):
        program = Program("alu", [Instr.scalar() for _ in range(10)])
        res = machine.run(program)
        assert res.cycles == 10
        assert res.instructions == 10

    def test_load_miss_stalls(self, machine, make_bytes):
        addr = machine.arena.alloc_page_aligned(64)
        machine.load(addr, make_bytes(64))
        cold = machine.run(Program("cold", [Instr.load(addr)]))
        warm = machine.run(Program("warm", [Instr.load(addr)]))
        assert cold.cycles > warm.cycles

    def test_store_hit_does_not_stall(self, machine):
        addr = machine.arena.alloc_page_aligned(64)
        machine.touch_range(addr, 64, for_write=True)  # warm, writable
        res = machine.run(Program("st", [Instr.store(addr, b"\x01" * 8)]))
        assert res.cycles == 1  # retires through the store buffer

    def test_store_miss_consumes_mlp(self, machine):
        """Write-allocate misses are throughput-bound like load misses."""
        addr = machine.arena.alloc_page_aligned(64)
        res = machine.run(Program("st", [Instr.store(addr, b"\x01" * 8)]))
        assert res.cycles > 1
        assert res.stall_cycles > 0

    def test_core_energy_charged(self, machine):
        before = machine.ledger.get(Component.CORE)
        machine.run(Program("alu", [Instr.scalar()] * 5))
        charged = machine.ledger.get(Component.CORE) - before
        assert charged == pytest.approx(5 * machine.config.core.epi_scalar)

    def test_simd_energy_higher(self, machine):
        cfg = machine.config.core
        assert cfg.epi_simd > cfg.epi_scalar

    def test_cc_instruction_dispatch(self, machine, make_bytes):
        a, c = machine.arena.alloc_colocated(128, 2)
        machine.load(a, make_bytes(128))
        program = Program("cc", [Instr.cc_op(cc_ops.cc_copy(a, c, 128))])
        res = machine.run(program)
        assert res.cc_instructions == 1
        assert res.cc_cycles > 0
        assert machine.peek(c, 128) == machine.peek(a, 128)

    def test_fence_drains_stalls(self, machine, make_bytes):
        addr = machine.arena.alloc_page_aligned(64)
        machine.load(addr, make_bytes(64))
        program = Program("fenced", [Instr.load(addr), Instr.fence()])
        res = machine.run(program)
        assert res.fences == 1
        assert res.stall_cycles > 0

    def test_load_data_captured(self, machine, make_bytes):
        addr = machine.arena.alloc_page_aligned(64)
        data = make_bytes(64)
        machine.load(addr, data)
        machine.cores[0].keep_load_data = True
        res = machine.run(Program("ld", [Instr.load(addr, 64)]))
        assert res.load_data == [data]


class TestBaselineKernels:
    def test_simd_copy_is_functional(self, machine, make_bytes):
        src, dst = machine.arena.alloc_colocated(256, 2)
        data = make_bytes(256)
        machine.load(src, data)
        machine.run(simd.simd_copy(src, dst, 256))
        assert machine.peek(dst, 256) == data

    def test_scalar_copy_is_functional(self, machine, make_bytes):
        src, dst = machine.arena.alloc_colocated(128, 2)
        data = make_bytes(128)
        machine.load(src, data)
        machine.run(simd.scalar_copy(src, dst, 128))
        assert machine.peek(dst, 128) == data

    def test_simd_or_is_functional(self, machine, make_bytes):
        a, b, c = machine.arena.alloc_colocated(128, 3)
        da, db = make_bytes(128), make_bytes(128)
        machine.load(a, da)
        machine.load(b, db)
        machine.run(simd.simd_or(a, b, c, 128))
        expected = (np.frombuffer(da, np.uint8) | np.frombuffer(db, np.uint8)).tobytes()
        assert machine.peek(c, 128) == expected

    def test_scalar_or_is_functional(self, machine, make_bytes):
        a, b, c = machine.arena.alloc_colocated(64, 3)
        da, db = make_bytes(64), make_bytes(64)
        machine.load(a, da)
        machine.load(b, db)
        machine.run(simd.scalar_or(a, b, c, 64))
        expected = (np.frombuffer(da, np.uint8) | np.frombuffer(db, np.uint8)).tobytes()
        assert machine.peek(c, 64) == expected

    def test_simd_fewer_instructions_than_scalar(self):
        scalar = simd.scalar_compare(0, 0x10000, 4096)
        vector = simd.simd_compare(0, 0x10000, 4096)
        assert len(vector) < len(scalar)

    def test_instruction_counts(self):
        program = simd.simd_copy(0, 0x10000, 128)
        counts = program.counts()
        assert counts["simd-load"] == 4
        assert counts["simd-store"] == 4

    def test_bad_sizes_rejected(self):
        with pytest.raises(Exception):
            simd.simd_copy(0, 0x1000, 33)


class TestCCvsBaselineShape:
    def test_cc_beats_base32_on_cycles(self, machine, make_bytes):
        """The headline claim at small scale: a CC copy of L3-resident data
        takes far fewer cycles than the Base_32 loop."""
        size = 2048
        src, dst = machine.arena.alloc_colocated(size, 2)
        machine.load(src, make_bytes(size))
        machine.warm_l3(src, size)
        machine.warm_l3(dst, size)
        base = machine.run(simd.simd_copy(src, dst, size))
        machine.warm_l3(src, size)
        machine.warm_l3(dst, size)
        cc = machine.run(Program("cc", [Instr.cc_op(cc_ops.cc_copy(src, dst, size))]))
        assert cc.cycles < base.cycles / 3

    def test_cc_beats_base32_on_energy(self, machine, make_bytes):
        size = 2048
        src, dst = machine.arena.alloc_colocated(size, 2)
        machine.load(src, make_bytes(size))
        machine.warm_l3(src, size)
        machine.warm_l3(dst, size)
        snap = machine.snapshot_energy()
        machine.run(simd.simd_copy(src, dst, size))
        base_energy = machine.energy_since(snap).total()
        machine.warm_l3(src, size)
        machine.warm_l3(dst, size)
        snap = machine.snapshot_energy()
        machine.run(Program("cc", [Instr.cc_op(cc_ops.cc_copy(src, dst, size))]))
        cc_energy = machine.energy_since(snap).total()
        assert cc_energy < base_energy / 2
