"""Fuzzing the text frontends and the ECC repair path.

The assembler and trace parser accept untrusted text: any input must
either parse or raise :class:`ISAError` - never crash with anything else.
The ECC path must repair a strike at *any* bit position of any block.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine
from repro.asm import parse
from repro.core.scrub import ScrubService
from repro.errors import ISAError
from repro.params import small_test_machine
from repro.trace import TraceReader, run_trace


class TestAssemblerFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse(text)
        except ISAError:
            pass  # the only acceptable failure mode

    @given(st.text(alphabet="cc_andorxbuzsearch0123456789x, #", max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_near_miss_mnemonics(self, text):
        try:
            parse(text)
        except ISAError:
            pass

    @given(st.integers(-(2**40), 2**40), st.integers(-(2**20), 2**20))
    @settings(max_examples=80, deadline=None)
    def test_numeric_extremes(self, addr, size):
        try:
            instr = parse(f"cc_buz {addr}, {size}")
        except ISAError:
            return
        # If it parsed, the ISA validated it: in-range and aligned.
        assert instr.src1 >= 0 and instr.src1 % 64 == 0
        assert 0 < instr.size <= 16 * 1024


class TestTraceFuzz:
    @given(st.lists(st.text(max_size=50), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_traces_never_crash_parser(self, lines):
        reader = TraceReader()
        for i, line in enumerate(lines):
            try:
                reader.feed_line(line, i)
            except ISAError:
                pass

    @given(st.lists(
        st.sampled_from(["scalar", "branch", "fence",
                         "load 0x0, 8", "store 0x40, zeros:8",
                         "cc_buz 0x0, 64", "cc_copy 0x0, 0x1000, 64"]),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=40, deadline=None)
    def test_valid_event_sequences_execute(self, events):
        trace = "init 0x0, zeros:4096\ninit 0x1000, zeros:4096\n" + "\n".join(events)
        m = ComputeCacheMachine(small_test_machine())
        result = run_trace(trace, m)
        assert result.instructions == len(events)
        assert result.cycles >= len(events)


class TestECCStrikeSweep:
    @given(st.integers(0, 511 * 8 - 1))
    @settings(max_examples=60, deadline=None)
    def test_any_single_bit_strike_repaired(self, bit):
        """Every bit position of an 8-block region: strike -> scrub ->
        identical data."""
        m = ComputeCacheMachine(small_test_machine())
        addr = m.arena.alloc_page_aligned(512)
        rng = np.random.default_rng(bit)
        m.load(addr, rng.integers(0, 256, 512, dtype=np.uint8).tobytes())
        m.warm_l3(addr, 512)
        level = m.hierarchy.l3[m.hierarchy.home_slice(addr, 0)]
        service = ScrubService(level)
        service.protect_resident()
        block = addr + (bit // 512) * 64
        before = level.peek_block(block)
        service.inject_strike(block, bit=bit % 512)
        report = service.scrub_pass()
        assert report.corrections == 1
        assert level.peek_block(block) == before
