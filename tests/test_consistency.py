"""RMO consistency model tests (Section IV-G)."""

import pytest

from repro.core.consistency import (
    OpKind,
    RMOOrderModel,
    intra_instruction_fence_possible,
)
from repro.errors import ReproError


class TestRMOOrdering:
    def test_non_fence_ops_unordered(self):
        """RMO: no ordering between data reads/writes, including CC ops."""
        model = RMOOrderModel()
        model.issue(OpKind.STORE)
        model.issue(OpKind.CC_RW)
        for kind in (OpKind.LOAD, OpKind.STORE, OpKind.CC_R, OpKind.CC_RW):
            assert model.may_issue(kind)

    def test_fence_blocked_by_pending(self):
        model = RMOOrderModel()
        op = model.issue(OpKind.CC_RW)
        assert not model.may_issue(OpKind.FENCE)
        model.complete(op)
        assert model.may_issue(OpKind.FENCE)

    def test_fence_drains_cc_ops(self):
        """A fence cannot commit until pending CC operations complete."""
        model = RMOOrderModel()
        model.issue(OpKind.CC_RW)
        model.issue(OpKind.CC_R)
        model.issue(OpKind.LOAD)
        assert len(model.pending_cc()) == 2
        drained = model.drain_for_fence()
        assert drained == 3
        assert model.pending_count == 0
        assert model.stats.fences == 1
        assert model.stats.max_drain == 3

    def test_fence_not_issuable_via_issue(self):
        model = RMOOrderModel()
        with pytest.raises(ReproError):
            model.issue(OpKind.FENCE)

    def test_complete_unknown_rejected(self):
        model = RMOOrderModel()
        with pytest.raises(ReproError):
            model.complete(42)

    def test_no_intra_instruction_fence(self):
        """IV-G: no fence between scalar ops of one CC instruction."""
        assert intra_instruction_fence_possible() is False
