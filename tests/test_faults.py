"""Fault-injection subsystem tests (:mod:`repro.faults`).

Covers the plan schema, the deterministic injector, the end-to-end
resilience campaign (zero silent corruptions, cross-backend and rerun
bit-identity), the chaos-pool runner degradation, an ECC single/double-bit
sweep over logical ops on both backends, and eager backend validation.
"""

import random
from dataclasses import replace

import pytest

from repro.api import (
    BACKENDS,
    ComputeCacheMachine,
    ConfigError,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    PointRunner,
    RunnerChaos,
    cc_ops,
    default_plan,
    fault_plan_from_json,
    fault_plan_to_json,
    run_campaign,
    small_test_machine,
)
from repro.bench.points import selftest_point


class TestFaultPlan:
    def test_default_plan_round_trips_through_json(self):
        plan = default_plan(7)
        assert fault_plan_from_json(fault_plan_to_json(plan)) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="sram.meltdown")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(kind="sram.bitflip", probability=1.5)

    def test_duplicate_kind_rejected(self):
        spec = FaultSpec(kind="sram.bitflip")
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan(seed=0, specs=(spec, spec))

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(FaultPlanError, match="schema"):
            FaultPlan.from_dict({"schema": "bogus/9", "seed": 0, "specs": []})

    def test_plan_error_is_a_config_error(self):
        assert issubclass(FaultPlanError, ConfigError)


class TestBackendValidation:
    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="bitexact"):
            ComputeCacheMachine(small_test_machine(), backend="gpu")

    def test_known_backends_accepted(self):
        for backend in BACKENDS:
            m = ComputeCacheMachine(small_test_machine(), backend=backend)
            assert m.config.backend == backend


class TestInjectorDeterminism:
    def _strikes(self, plan):
        m = ComputeCacheMachine(small_test_machine(), trace_events=True)
        injector = FaultInjector(m, plan)
        injector.install()
        a, b = m.arena.alloc_colocated(1024, 2)
        rng = random.Random("determinism")
        m.load(a, rng.randbytes(1024))
        m.load(b, rng.randbytes(1024))
        m.warm_l3(a, 1024)
        m.warm_l3(b, 1024)
        injector.pulse()
        return [
            (e.addr, e.unit) for e in m.tracer.snapshot()
            if e.kind == "fault.inject"
        ], dict(injector.injected), dict(injector.recovered)

    def test_same_plan_same_strikes(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(kind="sram.bitflip", probability=0.7, max_injections=8),
        ))
        assert self._strikes(plan) == self._strikes(plan)

    def test_different_seed_different_strikes(self):
        strikes = [
            self._strikes(FaultPlan(seed=seed, specs=(
                FaultSpec(kind="sram.bitflip", probability=0.7,
                          max_injections=8),
            )))[0]
            for seed in (3, 4)
        ]
        assert strikes[0] != strikes[1]


class TestEccSweep:
    """Single-bit strikes are corrected in place, double-bit strikes are
    detected and refetched; either way cc_and / cc_xor results stay
    bit-exact on both backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", ["sram.bitflip", "sram.double-bitflip"])
    def test_logical_ops_survive_strikes(self, backend, kind):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(kind=kind, probability=1.0, max_injections=6),
        ))
        m = ComputeCacheMachine(small_test_machine(), backend=backend,
                                trace_events=True)
        injector = FaultInjector(m, plan)
        injector.install()
        a, b, c = m.arena.alloc_colocated(1024, 3)
        rng = random.Random("ecc-sweep")
        da, db = rng.randbytes(1024), rng.randbytes(1024)
        m.load(a, da)
        m.load(b, db)
        m.warm_l3(a, 1024)
        m.warm_l3(b, 1024)
        injector.pulse()
        m.cc(cc_ops.cc_and(a, b, c, 1024))
        assert m.peek(c, 1024) == bytes(x & y for x, y in zip(da, db))
        injector.pulse()
        m.cc(cc_ops.cc_xor(a, b, c, 1024))
        assert m.peek(c, 1024) == bytes(x ^ y for x, y in zip(da, db))
        assert sum(injector.injected.values()) > 0
        if kind == "sram.bitflip":
            assert injector.recovered.get("corrected", 0) > 0
        else:
            assert injector.recovered.get("refetched", 0) > 0
        assert not injector.surfaced


class TestChaosRunner:
    def test_injected_pool_faults_degrade_to_serial(self):
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(kind="runner.timeout", probability=1.0,
                      max_injections=2),
            FaultSpec(kind="runner.crash", probability=1.0,
                      max_injections=1),
        ))
        chaos = RunnerChaos(plan)
        runner = PointRunner(jobs=2, use_cache=False, timeout_s=30.0,
                             retries=1)
        chaos.install(runner)
        from repro.bench.runner import Point

        points = [Point("selftest", {"value": v}) for v in range(6)]
        results = runner.run(points)
        assert results == [selftest_point(value=v) for v in range(6)]
        assert runner.stats.serial_fallbacks > 0

    def test_chaos_draw_respects_caps(self):
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(kind="runner.crash", probability=1.0,
                      max_injections=1),
        ))
        chaos = RunnerChaos(plan)
        modes = [chaos.draw() for _ in range(10)]
        assert modes.count("crash") == 1


class TestCampaign:
    @pytest.fixture(scope="class")
    def reports(self):
        plan = default_plan(5)
        return {b: run_campaign(plan, backend=b) for b in BACKENDS}

    def test_zero_silent_corruptions(self, reports):
        for report in reports.values():
            assert report.silent == 0

    def test_every_kind_injected(self, reports):
        for report in reports.values():
            assert all(count > 0 for count in report.injected.values())
            assert set(report.injected) == {s.kind for s in default_plan(5).specs}

    def test_cross_backend_bit_identity(self, reports):
        docs = [report.to_dict() for report in reports.values()]
        for doc in docs:
            doc.pop("backend")
        assert docs[0] == docs[1]

    def test_rerun_bit_identity(self, reports):
        again = run_campaign(default_plan(5), backend=BACKENDS[0])
        assert again.to_dict() == reports[BACKENDS[0]].to_dict()

    def test_report_format_mentions_silent(self, reports):
        text = reports[BACKENDS[0]].format()
        assert "silent corruptions" in text
        assert "image digest" in text

    def test_golden_run_injects_nothing(self):
        quiet = replace(default_plan(0), specs=())
        report = run_campaign(quiet, backend=BACKENDS[0],
                              include_runner=False)
        assert report.total_injected == 0
        assert report.silent == 0
