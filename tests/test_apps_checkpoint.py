"""Checkpointing application tests (fast profiles)."""

import pytest

from repro import ComputeCacheMachine
from repro.apps.checkpoint import (
    CheckpointRun,
    checkpoint_app_result,
    run_checkpoint,
)
from repro.apps.splash import BENCHMARKS, PROFILES, SplashProfile, profile
from repro.params import PAGE_SIZE, small_test_machine

FAST = SplashProfile("fast", dirty_pages_per_interval=3, cpi=1.0,
                     store_fraction=0.1, intervals=2)


def run(variant):
    return run_checkpoint(FAST, variant, ComputeCacheMachine(small_test_machine()))


class TestProfiles:
    def test_six_benchmarks(self):
        assert len(BENCHMARKS) == 6
        assert set(BENCHMARKS) == {
            "fmm", "radix", "cholesky", "barnes", "raytrace", "radiosity"
        }

    def test_radix_dirties_most(self):
        """radix permutes a large key array - the paper's worst case."""
        radix = PROFILES["radix"].dirty_pages_per_interval
        assert all(
            radix >= p.dirty_pages_per_interval for p in PROFILES.values()
        )

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("lu")

    def test_interval_cycles(self):
        assert profile("fmm").interval_cycles == pytest.approx(115_000)


class TestCheckpointRuns:
    @pytest.fixture(scope="class")
    def runs(self):
        return {v: run(v) for v in ("none", "base", "base32", "cc")}

    def test_copies_are_exact(self, runs):
        """run_checkpoint asserts shadow == source internally; reaching
        here means every page copy was bit-exact for every engine."""
        for v in ("base", "base32", "cc"):
            assert runs[v].pages_copied == FAST.dirty_pages_per_interval * FAST.intervals

    def test_none_variant_copies_nothing(self, runs):
        assert runs["none"].pages_copied == 0
        assert runs["none"].copy_cycles == 0

    def test_overhead_ordering(self, runs):
        """Figure 10's shape: Base > Base_32 > CC, all positive."""
        assert runs["base"].overhead > runs["base32"].overhead
        assert runs["base32"].overhead > runs["cc"].overhead
        assert runs["cc"].overhead > 0

    def test_cc_overhead_small(self, runs):
        """The paper's CC checkpointing overhead is ~6%."""
        assert runs["cc"].overhead < 0.10

    def test_instruction_reduction(self, runs):
        assert runs["cc"].copy_instructions < runs["base32"].copy_instructions / 50

    def test_page_alignment_gives_perfect_locality(self):
        """Page-to-page copies are page-aligned: every CC block op runs
        in place (the paper's 'perfect operand locality' claim)."""
        m = ComputeCacheMachine(small_test_machine())
        run_checkpoint(FAST, "cc", m)
        stats = m.controllers[0].stats
        assert stats.block_ops_inplace > 0
        assert stats.block_ops_nearplace == 0
        assert stats.block_ops_risc == 0

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            run("tape")

    def test_app_result_adapter(self, runs):
        res = checkpoint_app_result(runs["cc"])
        assert res.app == "checkpoint-fast"
        assert res.stats["overhead"] == pytest.approx(runs["cc"].overhead)

    def test_energy_ordering(self, runs):
        """Figure 11's shape: checkpointing energy cost shrinks with CC."""
        none_e = runs["none"].energy.total()
        assert runs["base"].energy.total() > none_e
        assert runs["cc"].energy.total() - none_e < (
            runs["base"].energy.total() - none_e
        )

    def test_working_set_scales_with_pages(self, runs):
        assert runs["base"].pages_copied * PAGE_SIZE <= FAST.intervals * 3 * PAGE_SIZE
