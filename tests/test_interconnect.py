"""Ring, H-tree, MSHR, and memory model tests."""

import pytest

from repro.cache.htree import HTree
from repro.cache.memory import MainMemory
from repro.cache.mshr import MSHRFile
from repro.cache.ring import RingInterconnect
from repro.energy.accounting import Component, EnergyLedger
from repro.errors import AddressError, ReproError
from repro.params import RingConfig


class TestRing:
    def test_shortest_path_hops(self):
        ring = RingInterconnect(RingConfig(stops=8))
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 7) == 1  # wrap-around
        assert ring.hops(0, 4) == 4
        assert ring.hops(3, 3) == 0

    def test_latency_includes_serialization(self):
        ring = RingInterconnect(RingConfig(stops=8, hop_latency=3))
        # 64B block = 2 flits of 256 bits: +1 cycle serialization.
        assert ring.latency(0, 2, data=True) == 6 + 1
        assert ring.latency(0, 2, data=False) == 6

    def test_energy_charged_to_ledger(self):
        ledger = EnergyLedger()
        ring = RingInterconnect(RingConfig(stops=8), ledger)
        ring.send_block(0, 4)
        assert ledger.get(Component.NOC) > 0
        assert ledger.get(Component.NOC) == pytest.approx(ring.stats.energy_pj)

    def test_control_cheaper_than_data(self):
        ring = RingInterconnect(RingConfig(stops=8))
        ring.send_control(0, 4)
        control = ring.stats.energy_pj
        ring.send_block(0, 4)
        assert ring.stats.energy_pj - control > control

    def test_core_stop_mapping(self):
        assert RingInterconnect.core_stop(0, 8) == 0
        assert RingInterconnect.core_stop(9, 8) == 1


class TestHTree:
    def test_l3_fraction_dominates(self):
        """Table I: ~80% of an L3-slice read is H-tree wires."""
        assert HTree("L3-slice").htree_fraction() > 0.75
        assert HTree("L1-D").htree_fraction() > 0.55

    def test_command_issue_serialization(self):
        h = HTree("L3-slice", commands_per_cycle=1)
        assert h.command_issue_cycles(64) == 64
        h2 = HTree("L3-slice", commands_per_cycle=4)
        assert h2.command_issue_cycles(64) == 16

    def test_transfer_accounting(self):
        h = HTree("L2")
        e = h.record_transfer()
        assert e == pytest.approx(675.0)
        assert h.data_transfers == 1


class TestMSHR:
    def test_allocate_and_retire(self):
        m = MSHRFile(capacity=2)
        assert m.allocate(0x40)
        assert m.allocate(0x80)
        assert not m.allocate(0xC0)  # full -> stall
        assert m.stalls == 1
        m.retire(0x40)
        assert m.allocate(0xC0)
        assert m.peak == 2

    def test_coalescing(self):
        m = MSHRFile(capacity=1)
        assert m.allocate(0x40)
        assert m.allocate(0x40)  # same block coalesces
        assert m.allocations == 1

    def test_retire_unknown_rejected(self):
        m = MSHRFile()
        with pytest.raises(ReproError):
            m.retire(0x40)


class TestMemory:
    def test_block_round_trip(self, make_bytes):
        mem = MainMemory(4096)
        data = make_bytes(64)
        mem.write_block(0x40, data)
        assert mem.read_block(0x40) == data
        assert mem.block_reads == 1 and mem.block_writes == 1

    def test_unaligned_rejected(self):
        mem = MainMemory(4096)
        with pytest.raises(AddressError):
            mem.read_block(0x41)

    def test_out_of_range_rejected(self):
        mem = MainMemory(4096)
        with pytest.raises(AddressError):
            mem.read_block(4096)

    def test_backdoor_uncounted(self, make_bytes):
        mem = MainMemory(4096)
        data = make_bytes(100)
        mem.load(10, data)
        assert mem.peek(10, 100) == data
        assert mem.block_reads == 0 and mem.block_writes == 0
