"""Property test: in-place, near-place, and RISC-fallback execution are
architecturally indistinguishable (same data, same result masks)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine, cc_ops
from repro.params import small_test_machine

OPS = ["and", "or", "xor", "copy", "not", "buz", "cmp"]


def build_instr(op, a, b, c, size):
    if op == "and":
        return cc_ops.cc_and(a, b, c, size)
    if op == "or":
        return cc_ops.cc_or(a, b, c, size)
    if op == "xor":
        return cc_ops.cc_xor(a, b, c, size)
    if op == "copy":
        return cc_ops.cc_copy(a, c, size)
    if op == "not":
        return cc_ops.cc_not(a, c, size)
    if op == "buz":
        return cc_ops.cc_buz(c, size)
    if op == "cmp":
        return cc_ops.cc_cmp(a, b, size)
    raise AssertionError(op)


def run_one(op, da, db, mode):
    m = ComputeCacheMachine(small_test_machine())
    a, b, c = m.arena.alloc_colocated(len(da), 3)
    m.load(a, da)
    m.load(b, db)
    m.load(c, b"\xA5" * len(da))
    kwargs = {}
    if mode == "nearplace":
        kwargs["force_nearplace"] = True
    controller = m.controllers[0]
    if mode == "risc":
        controller.contention_hook = lambda addr: True
    res = m.cc(build_instr(op, a, b, c, len(da)), **kwargs)
    return m.peek(c, len(da)), res.result, res


@given(
    st.sampled_from(OPS),
    st.integers(1, 4),
    st.binary(min_size=64, max_size=64),
    st.binary(min_size=64, max_size=64),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_execution_modes_agree(op, blocks, seed_a, seed_b):
    size = blocks * 64
    da = (seed_a * blocks)[:size]
    db = (seed_b * blocks)[:size]
    data_in, mask_in, res_in = run_one(op, da, db, "inplace")
    data_near, mask_near, res_near = run_one(op, da, db, "nearplace")
    data_risc, mask_risc, res_risc = run_one(op, da, db, "risc")
    assert data_in == data_near == data_risc
    assert mask_in == mask_near == mask_risc
    assert res_in.inplace_ops == blocks
    assert res_near.nearplace_ops == blocks
    assert res_risc.risc_ops == blocks


@given(st.sampled_from(["and", "or", "xor", "copy", "not", "buz"]),
       st.binary(min_size=128, max_size=128),
       st.binary(min_size=128, max_size=128))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_result_matches_numpy_reference(op, da, db):
    na = np.frombuffer(da, dtype=np.uint8)
    nb = np.frombuffer(db, dtype=np.uint8)
    expected = {
        "and": (na & nb).tobytes(),
        "or": (na | nb).tobytes(),
        "xor": (na ^ nb).tobytes(),
        "copy": da,
        "not": (~na).astype(np.uint8).tobytes(),
        "buz": bytes(128),
    }[op]
    data, _, _ = run_one(op, da, db, "inplace")
    assert data == expected


@pytest.mark.parametrize("mode", ["inplace", "nearplace"])
def test_timing_orderings(mode):
    """In-place is faster than near-place per the 14 vs 22-cycle latency
    and the parallel-vs-serial issue model (Section IV-J)."""
    m = ComputeCacheMachine(small_test_machine())
    a, b, c = m.arena.alloc_colocated(512, 3)
    m.load(a, bytes(512))
    m.load(b, bytes(512))
    m.warm_l3(a, 512)
    m.warm_l3(b, 512)
    m.warm_l3(c, 512)
    res_in = m.cc(cc_ops.cc_and(a, b, c, 512))
    res_near = m.cc(cc_ops.cc_and(a, b, c, 512), force_nearplace=True)
    assert res_in.compute_cycles < res_near.compute_cycles
