"""Core-model branch coverage: CC overlap accounting, fences, flags."""

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cpu.program import Instr, InstrKind, Program
from repro.errors import ReproError
from repro.params import small_test_machine


@pytest.fixture
def m():
    return ComputeCacheMachine(small_test_machine())


def _staged_pair(m, make_bytes, size=512):
    a, c = m.arena.alloc_colocated(size, 2)
    m.load(a, make_bytes(size))
    m.warm_l3(a, size)
    m.warm_l3(c, size)
    return a, c


class TestCCOverlap:
    def test_independent_work_hides_cc_latency(self, m, make_bytes):
        """A CC instruction followed by ALU work: the ALU work runs during
        the CC operation, so total < sum of parts."""
        a, c = _staged_pair(m, make_bytes)
        cc_only = m.run(Program("cc", [Instr.cc_op(cc_ops.cc_copy(a, c, 512))]))
        alu_count = int(cc_only.cycles) * 2  # more ALU work than CC latency
        m2 = ComputeCacheMachine(small_test_machine())
        a2, c2 = _staged_pair(m2, make_bytes)
        mixed = m2.run(Program("mix",
                               [Instr.cc_op(cc_ops.cc_copy(a2, c2, 512))]
                               + [Instr.scalar()] * alu_count))
        assert mixed.cycles < cc_only.cycles + alu_count
        assert mixed.cycles >= alu_count  # the ALU stream itself

    def test_back_to_back_cc_pipelines(self, m, make_bytes):
        """N identical CC instructions cost far less than N x one, because
        only controller occupancy serializes."""
        a, c = _staged_pair(m, make_bytes)
        one = m.run(Program("one", [Instr.cc_op(cc_ops.cc_copy(a, c, 512))]))
        m2 = ComputeCacheMachine(small_test_machine())
        a2, c2 = _staged_pair(m2, make_bytes)
        four = m2.run(Program("four",
                              [Instr.cc_op(cc_ops.cc_copy(a2, c2, 512))
                               for _ in range(4)]))
        assert four.cycles < 4 * one.cycles

    def test_fence_waits_for_cc_completion(self, m, make_bytes):
        a, c = _staged_pair(m, make_bytes)
        unfenced = m.run(Program("u", [Instr.cc_op(cc_ops.cc_copy(a, c, 512))]))
        m2 = ComputeCacheMachine(small_test_machine())
        a2, c2 = _staged_pair(m2, make_bytes)
        fenced = m2.run(Program("f", [Instr.cc_op(cc_ops.cc_copy(a2, c2, 512)),
                                      Instr.fence(),
                                      Instr.scalar()]))
        # The fence exposes the CC latency before the scalar issues.
        assert fenced.cycles >= unfenced.cycles + 1
        assert fenced.fences == 1


class TestInstructionFlags:
    def test_dependent_load_slower_than_parallel(self, m, make_bytes):
        addrs = [m.arena.alloc_page_aligned(64) for _ in range(8)]
        for addr in addrs:
            m.load(addr, make_bytes(64))
        parallel = m.run(Program("p", [Instr.load(a) for a in addrs]))
        m2 = ComputeCacheMachine(small_test_machine())
        addrs2 = [m2.arena.alloc_page_aligned(64) for _ in range(8)]
        for addr in addrs2:
            m2.load(addr, make_bytes(64))
        chained = m2.run(Program("c", [Instr.load(a, dependent=True)
                                       for a in addrs2]))
        assert chained.cycles > parallel.cycles

    def test_streaming_load_free_of_stall(self, m, make_bytes):
        addr = m.arena.alloc_page_aligned(64)
        m.load(addr, make_bytes(64))
        res = m.run(Program("s", [Instr.load(addr, 64, streaming=True)]))
        assert res.stall_cycles == 0
        assert res.cycles == 1

    def test_streaming_still_moves_data(self, m, make_bytes):
        addr = m.arena.alloc_page_aligned(64)
        data = make_bytes(64)
        m.load(addr, data)
        m.run(Program("s", [Instr.load(addr, 64, streaming=True)]))
        assert m.hierarchy.l1[0].contains(addr)  # the fill happened


class TestErrorBranches:
    def test_store_without_payload(self, m):
        bad = Program("bad", [Instr(kind=InstrKind.STORE, addr=0, size=8)])
        with pytest.raises(ReproError):
            m.run(bad)

    def test_cc_without_payload(self, m):
        bad = Program("bad", [Instr(kind=InstrKind.CC)])
        with pytest.raises(ReproError):
            m.run(bad)

    def test_unknown_alu_op(self, m, make_bytes):
        addr = m.arena.alloc_page_aligned(64)
        m.load(addr, make_bytes(64))
        bad = Program("bad", [
            Instr.load(addr, 8),
            Instr(kind=InstrKind.STORE, addr=addr, size=8,
                  src_addr=addr, src2_addr=addr, alu="nand"),
        ])
        with pytest.raises(ReproError):
            m.run(bad)


class TestRunResultMetrics:
    def test_ipc_and_seconds(self, m):
        res = m.run(Program("p", [Instr.scalar()] * 10))
        assert res.ipc == pytest.approx(1.0)
        assert res.seconds(2.0) == pytest.approx(10 / 2e9)

    def test_counts_by_kind(self, m, make_bytes):
        addr = m.arena.alloc_page_aligned(64)
        m.load(addr, make_bytes(64))
        res = m.run(Program("p", [
            Instr.scalar(), Instr.branch(), Instr.simd_op(),
            Instr.load(addr, 8), Instr.store(addr, b"\x01" * 8),
        ]))
        assert res.scalar_ops == 2  # scalar + branch
        assert res.simd_ops == 1
        assert res.loads == 1 and res.stores == 1
