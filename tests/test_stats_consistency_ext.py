"""Tests: machine-wide stats, TSO exploration, and the 8T cell variant."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.core.consistency import OpKind, TSOOrderModel
from repro.errors import DataCorruptionError
from repro.params import small_test_machine
from repro.sram import BitCellArray, CellType
from repro.stats import collect_stats, format_stats


class TestStatsCollection:
    @pytest.fixture
    def busy_machine(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        a, b, c = m.arena.alloc_colocated(512, 3)
        m.load(a, make_bytes(512))
        m.load(b, make_bytes(512))
        m.cc(cc_ops.cc_and(a, b, c, 512))
        m.read(a, 64)
        return m

    def test_snapshot_counts(self, busy_machine):
        snap = collect_stats(busy_machine)
        assert snap.cc_instructions == 1
        assert snap.cc_inplace_ops == 8
        assert snap.cc_risc_ops == 0
        assert snap.memory_reads > 0
        assert snap.dynamic_energy_nj > 0
        assert snap.levels["L3"].subarray_compute_ops >= 8

    def test_hit_rate(self, busy_machine):
        busy_machine.read(0x0, 8)
        busy_machine.read(0x0, 8)  # second read hits L1
        snap = collect_stats(busy_machine)
        assert 0.0 < snap.levels["L1"].hit_rate <= 1.0

    def test_format_is_readable(self, busy_machine):
        text = format_stats(collect_stats(busy_machine))
        assert "Machine statistics" in text
        assert "L3:" in text
        assert "CC: 1 instructions" in text
        assert "dynamic energy" in text

    def test_breakdown_components(self, busy_machine):
        snap = collect_stats(busy_machine)
        assert set(snap.energy_breakdown_nj) == {
            "core", "cache-access", "cache-ic", "noc"
        }


class TestTSOExploration:
    def test_rmo_allows_everything_pending(self):
        from repro.core.consistency import RMOOrderModel

        rmo = RMOOrderModel()
        rmo.issue(OpKind.CC_RW)
        assert rmo.may_issue(OpKind.STORE)
        assert rmo.may_issue(OpKind.LOAD)

    def test_tso_orders_store_stream(self):
        tso = TSOOrderModel()
        op = tso.issue(OpKind.STORE)
        assert not tso.may_issue(OpKind.STORE)
        assert not tso.may_issue(OpKind.CC_RW)
        tso.complete(op)
        assert tso.may_issue(OpKind.STORE)

    def test_tso_load_bypasses_scalar_store_not_cc_rw(self):
        tso = TSOOrderModel()
        st = tso.issue(OpKind.STORE)
        assert tso.may_issue(OpKind.LOAD)  # store buffer bypass
        tso.complete(st)
        cc = tso.issue(OpKind.CC_RW)
        assert not tso.may_issue(OpKind.LOAD)  # no forwarding from vectors
        tso.complete(cc)
        assert tso.may_issue(OpKind.LOAD)

    def test_tso_cc_r_unordered(self):
        tso = TSOOrderModel()
        tso.issue(OpKind.STORE)
        assert tso.may_issue(OpKind.CC_R)

    def test_tso_exposes_cc_rw_latency(self):
        """The headline of the exploration: RMO hides what TSO must wait
        for - a CC-RW pending under TSO stalls the next store."""
        tso = TSOOrderModel()
        tso.issue(OpKind.CC_RW)
        assert tso.ordering_stalls(OpKind.STORE)

    def test_fence_semantics_shared(self):
        tso = TSOOrderModel()
        tso.issue(OpKind.LOAD)
        assert not tso.may_issue(OpKind.FENCE)
        assert tso.drain_for_fence() == 1


class TestEightTCell:
    def _rows(self, pattern):
        return np.array([c == "1" for c in pattern], dtype=bool)

    def test_8t_immune_to_full_swing_disturb(self):
        """The footnote-1 variant: differential read-disturb-resilient 8T
        cells survive multi-row activation even without word-line
        underdrive - where 6T cells corrupt."""
        for cell_type, should_corrupt in ((CellType.SIX_T, True),
                                          (CellType.EIGHT_T, False)):
            arr = BitCellArray(4, 4, wordline_underdrive=False,
                               cell_type=cell_type)
            arr.write_row(0, self._rows("1100"))
            arr.write_row(1, self._rows("1010"))
            if should_corrupt:
                with pytest.raises(DataCorruptionError):
                    arr.activate([0, 1])
            else:
                bl, blb = arr.activate([0, 1])
                assert (bl == self._rows("1000")).all()
                assert (arr.read_row(0) == self._rows("1100")).all()
                assert (arr.read_row(1) == self._rows("1010")).all()

    def test_8t_algebra_identical(self):
        a6 = BitCellArray(2, 8, cell_type=CellType.SIX_T)
        a8 = BitCellArray(2, 8, cell_type=CellType.EIGHT_T)
        for arr in (a6, a8):
            arr.write_row(0, self._rows("11001010"))
            arr.write_row(1, self._rows("10101100"))
        assert (a6.activate([0, 1])[0] == a8.activate([0, 1])[0]).all()

    def test_area_tradeoff(self):
        assert CellType.EIGHT_T.relative_area > CellType.SIX_T.relative_area
        assert CellType.EIGHT_T.read_disturb_immune
        assert not CellType.SIX_T.read_disturb_immune


class TestMultiCoreCC:
    """CC operations from multiple cores interacting through coherence."""

    def test_two_cores_cc_on_disjoint_data(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        a0, b0, c0 = m.arena.alloc_colocated(256, 3)
        a1, b1, c1 = m.arena.alloc_colocated(256, 3)
        d = [make_bytes(256) for _ in range(4)]
        m.load(a0, d[0]); m.load(b0, d[1]); m.load(a1, d[2]); m.load(b1, d[3])
        m.cc(cc_ops.cc_and(a0, b0, c0, 256), core=0)
        m.cc(cc_ops.cc_or(a1, b1, c1, 256), core=1)
        na = np.frombuffer(d[0], np.uint8) & np.frombuffer(d[1], np.uint8)
        nb = np.frombuffer(d[2], np.uint8) | np.frombuffer(d[3], np.uint8)
        assert m.peek(c0, 256) == na.tobytes()
        assert m.peek(c1, 256) == nb.tobytes()
        m.hierarchy.check_inclusion()
        m.hierarchy.check_single_writer()

    def test_cc_sees_other_cores_dirty_data(self, make_bytes):
        """Core 1 writes a; core 0's CC op must consume the dirty data
        (writeback through the existing coherence machinery, IV-F)."""
        m = ComputeCacheMachine(small_test_machine())
        a, c = m.arena.alloc_colocated(256, 2)
        m.load(a, make_bytes(256))
        fresh = make_bytes(256)
        m.write(a, fresh, core=1)  # dirty in core 1's private caches
        m.cc(cc_ops.cc_copy(a, c, 256), core=0)
        assert m.peek(c, 256) == fresh
        m.hierarchy.check_single_writer()

    def test_core_read_after_cc_write(self, make_bytes):
        """A CC destination is visible to every core's subsequent loads."""
        m = ComputeCacheMachine(small_test_machine())
        a, c = m.arena.alloc_colocated(256, 2)
        data = make_bytes(256)
        m.load(a, data)
        m.cc(cc_ops.cc_copy(a, c, 256), core=0)
        assert m.read(c, 256, core=1) == data

    def test_interleaved_cc_and_stores(self, make_bytes):
        """Stores racing with CC ops on the same buffer resolve through
        coherence: the final CC copy sees the latest store."""
        m = ComputeCacheMachine(small_test_machine())
        a, c = m.arena.alloc_colocated(256, 2)
        m.load(a, make_bytes(256))
        for i in range(4):
            m.write(a + i * 64, bytes([i + 1]) * 64, core=i % 2)
            m.cc(cc_ops.cc_copy(a, c, 256), core=(i + 1) % 2)
        expected = b"".join(bytes([i + 1]) * 64 for i in range(4))
        assert m.peek(c, 256) == expected
        m.hierarchy.check_inclusion()
