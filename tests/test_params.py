"""Configuration tests: Table III/IV geometry invariants."""

import pytest

from repro.errors import ConfigError
from repro.params import (
    BLOCK_SIZE,
    PAGE_SIZE,
    CacheLevelConfig,
    MachineConfig,
    log2i,
    ns_to_cycles,
    sandybridge_8core,
    small_test_machine,
    validate_table3,
)


class TestLog2:
    def test_powers(self):
        assert log2i(1) == 0
        assert log2i(4096) == 12

    def test_non_power_rejected(self):
        with pytest.raises(ConfigError):
            log2i(12)


class TestTable4Defaults:
    """The default machine must match Table IV exactly."""

    def test_core(self):
        cfg = sandybridge_8core()
        assert cfg.cores == 8
        assert cfg.core.frequency_ghz == 2.66
        assert cfg.core.load_queue_entries == 48
        assert cfg.core.store_queue_entries == 32

    def test_caches(self):
        cfg = sandybridge_8core()
        assert cfg.l1d.size == 32 * 1024 and cfg.l1d.ways == 8
        assert cfg.l1d.hit_latency == 5
        assert cfg.l2.size == 256 * 1024 and cfg.l2.ways == 8
        assert cfg.l2.hit_latency == 11
        assert cfg.l3_slice.size == 2 * 1024 * 1024 and cfg.l3_slice.ways == 16
        assert cfg.l3_slices == 8
        assert cfg.l3_total_size == 16 * 1024 * 1024

    def test_interconnect_memory(self):
        cfg = sandybridge_8core()
        assert cfg.ring.hop_latency == 3
        assert cfg.ring.link_width_bits == 256
        assert cfg.memory.latency == 120


class TestTable3Geometry:
    """Banks, block partitions, and minimum matching address bits."""

    def test_banks_and_partitions(self):
        cfg = sandybridge_8core()
        assert (cfg.l1d.banks, cfg.l1d.bps_per_bank) == (2, 2)
        assert (cfg.l2.banks, cfg.l2.bps_per_bank) == (8, 2)
        assert (cfg.l3_slice.banks, cfg.l3_slice.bps_per_bank) == (16, 4)

    def test_min_locality_bits(self):
        table = validate_table3(sandybridge_8core())
        assert table == {"L1-D": 8, "L2": 10, "L3-slice": 12}

    def test_page_alignment_suffices(self):
        """4 KB pages fix 12 low bits - enough for every level (IV-C)."""
        cfg = sandybridge_8core()
        page_bits = log2i(PAGE_SIZE)
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            assert level.min_locality_bits <= page_bits

    def test_l3_subarray_counts(self):
        """A 2 MB L3 slice has 64 sub-arrays across 16 banks (Section II-A)."""
        cfg = sandybridge_8core()
        assert cfg.l3_slice.num_partitions == 64
        assert cfg.l3_slice.blocks_per_partition == 512

    def test_partition_arithmetic_consistent(self):
        for cfg in (sandybridge_8core(), small_test_machine()):
            for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
                assert level.blocks == level.sets * level.ways
                assert (
                    level.blocks_per_partition * level.num_partitions == level.blocks
                )
                assert level.sets_per_partition * level.num_partitions == level.sets
                assert level.min_locality_bits == (
                    level.offset_bits + level.bank_bits + level.bp_bits
                )


class TestValidation:
    def test_non_power_of_two_size(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="X", size=3000, ways=2, banks=2,
                             bps_per_bank=2, hit_latency=1)

    def test_too_many_partitions(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="X", size=1024, ways=8, banks=8,
                             bps_per_bank=8, hit_latency=1)

    def test_memory_size_page_multiple(self):
        with pytest.raises(ConfigError):
            MachineConfig(memory_size=PAGE_SIZE + BLOCK_SIZE)

    def test_ns_to_cycles_rounds_up(self):
        cfg = sandybridge_8core()
        assert ns_to_cycles(1.0, cfg.core) == 3  # 2.66 GHz -> 0.376 ns/cycle

    def test_scaled_copy(self):
        cfg = sandybridge_8core().scaled(memory_size=2 * 1024 * 1024)
        assert cfg.memory_size == 2 * 1024 * 1024
        assert cfg.cores == 8
