"""Calibration lock: the headline reproduction numbers must not drift.

EXPERIMENTS.md records specific measured values; refactors that silently
move them would invalidate the documented paper-vs-measured story.  This
test pins the fast headline metrics inside tolerance bands (the heavier
app/checkpoint numbers are pinned by their benchmarks' assertions).
"""

import pytest

from repro.bench.microbench import KERNELS, figure7, figure7_summary
from repro.sram.area import subarray_area


@pytest.fixture(scope="module")
def fig7():
    return figure7()


class TestFigure7Lock:
    def test_dynamic_savings_bands(self, fig7):
        """Measured 91/95/86/93% vs the paper's 90/89/71/92%."""
        expected = {"copy": 0.914, "compare": 0.949,
                    "search": 0.864, "logical": 0.930}
        for kernel, target in expected.items():
            base = fig7[kernel]["base32"].dynamic.total()
            cc = fig7[kernel]["cc"].dynamic.total()
            assert 1 - cc / base == pytest.approx(target, abs=0.03), kernel

    def test_throughput_gain_bands(self, fig7):
        expected = {"copy": 16.0, "compare": 8.5, "search": 13.0, "logical": 24.0}
        for kernel, target in expected.items():
            pair = fig7[kernel]
            gain = pair["base32"].steady_cycles / pair["cc"].steady_cycles
            assert gain == pytest.approx(target, rel=0.2), kernel

    def test_summary_lock(self, fig7):
        summary = figure7_summary(fig7)
        assert summary["mean_throughput_gain"] == pytest.approx(15.4, rel=0.2)
        assert summary["mean_dynamic_saving"] == pytest.approx(0.91, abs=0.04)
        assert summary["mean_total_energy_ratio"] == pytest.approx(11.9, rel=0.25)

    def test_cc_latency_constants(self, fig7):
        """4 KB in-place ops: 64-command issue + 14-cycle sub-array op."""
        assert fig7["copy"]["cc"].steady_cycles == pytest.approx(78.0)
        assert fig7["logical"]["cc"].steady_cycles == pytest.approx(78.0)


class TestStructuralLock:
    def test_area_overhead(self):
        assert subarray_area(512, 512).overhead_fraction == pytest.approx(
            0.08, abs=0.015
        )

    def test_energy_tables_untouched(self):
        from repro.energy.tables import CC_OP_ENERGY_PJ

        assert CC_OP_ENERGY_PJ["L3-slice"]["search"] == 3692.0
        assert CC_OP_ENERGY_PJ["L1-D"]["read"] == 295.0

    def test_epi_calibration(self):
        """Figure 3's proportion anchors EPI; moving it re-opens Fig 7b."""
        from repro.params import CoreConfig

        core = CoreConfig()
        assert core.epi_scalar == 800.0
        assert core.epi_simd == 1000.0
