"""Exception-hierarchy contracts and remaining CLI paths."""

import pytest

from repro import errors
from repro.cli import build_parser, main


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigError, errors.AddressError, errors.OperandLocalityError,
        errors.ActivationLimitError, errors.DataCorruptionError,
        errors.PageSpanError, errors.PinnedLineError, errors.CoherenceError,
        errors.ECCError, errors.ISAError,
    ]

    def test_all_derive_from_repro_error(self):
        for exc in self.ALL_ERRORS:
            assert issubclass(exc, errors.ReproError)

    def test_single_except_catches_everything(self):
        for exc in self.ALL_ERRORS:
            with pytest.raises(errors.ReproError):
                raise exc("boom")

    def test_distinct_types(self):
        """No error aliases another: callers can discriminate."""
        assert len(set(self.ALL_ERRORS)) == len(self.ALL_ERRORS)
        for a in self.ALL_ERRORS:
            for b in self.ALL_ERRORS:
                if a is not b:
                    assert not issubclass(a, b)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestCLIMore:
    def test_fig3_command(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "scalar" in out and "cc" in out

    def test_fig7_small_size(self, capsys):
        assert main(["fig7", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "mean_throughput_gain" in out

    def test_export_fast(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.json")
        assert main(["export", "--out", out_path]) == 0
        assert "validation_ok=True" in capsys.readouterr().out
        import json

        doc = json.loads(open(out_path).read())
        assert doc["schema"] == "repro.results/1"

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.scale == 0.5
        args = build_parser().parse_args(["fig10"])
        assert args.intervals == 1
        args = build_parser().parse_args(["export"])
        assert args.out == "results.json" and not args.full
