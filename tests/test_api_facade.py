"""The :mod:`repro.api` stability façade and its deprecation shims.

``repro.api`` is the supported import surface: every symbol the docs and
examples use must be importable from it, deep imports of those symbols
must keep working but warn, and the façade itself (plus the ``repro``
top-level convenience names) must import warning-free.
"""

import subprocess
import sys
import warnings

import pytest

import repro
import repro.api


#: Symbols the docs (README.md, docs/*.md) and examples/*.py import —
#: the façade contract: every one must be importable from ``repro.api``.
DOCS_AND_EXAMPLES_SYMBOLS = [
    "ComputeCacheMachine", "cc_ops", "MachineConfig", "sandybridge_8core",
    "small_test_machine", "collect_stats", "format_stats", "ScrubService",
    "DataCorruptionError", "BitCellArray", "CellType", "ArrayRef",
    "VectorCompiler", "compile_and_run", "format_instruction", "parse",
    "Opcode", "run_trace", "profile_trace", "format_profile",
    "write_chrome_trace", "config_from_json", "config_to_json",
    "fresh_machine", "run_checkpoint", "PROFILES", "SplashProfile",
    "bitmap_db", "bmm", "stringmatch", "textgen", "wordcount",
    "PointRunner", "Point", "FaultPlan", "default_plan", "run_campaign",
]


class TestFacadeSurface:
    def test_every_all_symbol_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_all_is_explicit_and_sorted_unique(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_docs_and_examples_symbols_present(self):
        missing = [n for n in DOCS_AND_EXAMPLES_SYMBOLS
                   if n not in repro.api.__all__]
        assert not missing

    def test_toplevel_lazy_names(self):
        assert repro.FaultPlan is repro.api.FaultPlan
        assert repro.api.ComputeCacheMachine is repro.ComputeCacheMachine
        with pytest.raises(AttributeError):
            repro.definitely_not_an_attribute


class TestDeprecationShims:
    @pytest.mark.parametrize("module_name,symbol", [
        ("repro.params", "MachineConfig"),
        ("repro.machine", "ComputeCacheMachine"),
        ("repro.stats", "collect_stats"),
        ("repro.events", "EventTracer"),
        ("repro.errors", "ECCError"),
        ("repro.config_io", "load_config"),
        ("repro.core.scrub", "ScrubService"),
        ("repro.cpu.program", "Program"),
        ("repro.bench.runner", "PointRunner"),
        ("repro.sram", "BitCellArray"),
        ("repro.apps.common", "fresh_machine"),
        ("repro.apps.splash", "PROFILES"),
        ("repro.asm", "parse"),
        ("repro.compiler", "compile_and_run"),
        ("repro.trace", "run_trace"),
    ])
    def test_deep_access_warns_and_still_works(self, module_name, symbol):
        import importlib

        module = importlib.import_module(module_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(module, symbol)
        assert value is getattr(repro.api, symbol)
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("repro.api" in msg and symbol in msg for msg in messages)

    def test_underscore_names_exempt(self):
        import repro.params as params

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            params.__name__
            params.__dict__
        assert not caught

    def test_internal_imports_do_not_warn(self):
        """The library's own modules import from the deep paths freely —
        only external callers get the warning."""
        code = (
            "import warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "import repro.api\n"
            "from repro import ComputeCacheMachine, cc_ops\n"
            "from repro.api import MachineConfig, run_campaign\n"
            "print('clean')\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_deep_import_fails_under_error_filter(self):
        code = (
            "import warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "from repro.params import MachineConfig\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode != 0
        assert "DeprecationWarning" in proc.stderr
