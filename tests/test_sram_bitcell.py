"""Bit-cell array tests: multi-row activation physics and fault injection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ActivationLimitError, AddressError, DataCorruptionError
from repro.sram import BitCellArray


def bits(pattern: str) -> np.ndarray:
    return np.array([c == "1" for c in pattern], dtype=bool)


class TestBasicAccess:
    def test_write_read_row(self):
        arr = BitCellArray(4, 8)
        arr.write_row(2, bits("10110001"))
        assert (arr.read_row(2) == bits("10110001")).all()

    def test_initially_zero(self):
        arr = BitCellArray(4, 8)
        assert not arr.read_row(0).any()

    def test_out_of_range_row(self):
        arr = BitCellArray(4, 8)
        with pytest.raises(AddressError):
            arr.read_row(4)
        with pytest.raises(AddressError):
            arr.write_row(-1, bits("00000000"))

    def test_wrong_width_write(self):
        arr = BitCellArray(4, 8)
        with pytest.raises(AddressError):
            arr.write_row(0, bits("0000"))


class TestMultiRowActivation:
    """The core bit-line computing behaviour (Figure 2)."""

    def test_and_nor_on_two_rows(self):
        arr = BitCellArray(4, 4)
        arr.write_row(0, bits("0011"))
        arr.write_row(1, bits("0101"))
        bl, blb = arr.activate([0, 1])
        assert (bl == bits("0001")).all()    # AND
        assert (blb == bits("1000")).all()   # NOR

    def test_single_row_degenerates_to_read(self):
        arr = BitCellArray(4, 4)
        arr.write_row(0, bits("0110"))
        bl, blb = arr.activate([0])
        assert (bl == bits("0110")).all()
        assert (blb == ~bits("0110")).all()

    def test_many_rows_and_nor(self):
        arr = BitCellArray(8, 4)
        patterns = ["1110", "1101", "1011"]
        for i, p in enumerate(patterns):
            arr.write_row(i, bits(p))
        bl, blb = arr.activate([0, 1, 2])
        assert (bl == bits("1000")).all()
        assert (blb == bits("0000")).all()

    def test_activation_limit_enforced(self):
        arr = BitCellArray(128, 4, max_activated=64)
        with pytest.raises(ActivationLimitError):
            arr.activate(list(range(65)))
        # 64 rows is the demonstrated-safe maximum.
        bl, _ = arr.activate(list(range(64)))
        assert not bl.any()

    def test_duplicate_rows_rejected(self):
        arr = BitCellArray(4, 4)
        with pytest.raises(AddressError):
            arr.activate([1, 1])

    def test_empty_activation_rejected(self):
        arr = BitCellArray(4, 4)
        with pytest.raises(AddressError):
            arr.activate([])

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_and_nor_match_boolean_algebra(self, a, b):
        arr = BitCellArray(2, 16)
        row_a = np.array([(a >> i) & 1 for i in range(16)], dtype=bool)
        row_b = np.array([(b >> i) & 1 for i in range(16)], dtype=bool)
        arr.write_row(0, row_a)
        arr.write_row(1, row_b)
        bl, blb = arr.activate([0, 1])
        assert (bl == (row_a & row_b)).all()
        assert (blb == ~(row_a | row_b)).all()


class TestDisturbFaultInjection:
    """Why the circuit lowers word-line voltage (Section II-B)."""

    def test_underdrive_preserves_data(self):
        arr = BitCellArray(4, 4, wordline_underdrive=True)
        arr.write_row(0, bits("1100"))
        arr.write_row(1, bits("1010"))
        arr.activate([0, 1])
        assert (arr.read_row(0) == bits("1100")).all()
        assert (arr.read_row(1) == bits("1010")).all()

    def test_full_swing_corrupts(self):
        arr = BitCellArray(4, 4, wordline_underdrive=False)
        arr.write_row(0, bits("1100"))
        arr.write_row(1, bits("1010"))
        with pytest.raises(DataCorruptionError):
            arr.activate([0, 1])
        # The victim '1' cells on discharged bit-lines flipped to '0'.
        assert (arr.read_row(0) == bits("1000")).all()
        assert (arr.read_row(1) == bits("1000")).all()

    def test_full_swing_safe_when_rows_agree(self):
        arr = BitCellArray(4, 4, wordline_underdrive=False)
        arr.write_row(0, bits("1010"))
        arr.write_row(1, bits("1010"))
        bl, _ = arr.activate([0, 1])
        assert (bl == bits("1010")).all()

    def test_single_row_never_disturbs(self):
        arr = BitCellArray(4, 4, wordline_underdrive=False)
        arr.write_row(0, bits("1111"))
        arr.activate([0])
        assert (arr.read_row(0) == bits("1111")).all()


class TestSnapshot:
    def test_snapshot_is_copy(self):
        arr = BitCellArray(2, 4)
        snap = arr.snapshot()
        arr.write_row(0, bits("1111"))
        assert not snap.any()
