"""Instruction / operation / key table tests (Section IV-D)."""

import pytest

from repro.core.instruction_table import InstructionTable
from repro.core.isa import cc_cmp, cc_copy
from repro.core.key_table import KeyTable
from repro.core.operation_table import (
    BlockOperand,
    BlockOperation,
    OperandStatus,
    OperationTable,
    OpStatus,
)
from repro.errors import ReproError


class TestInstructionTable:
    def test_allocate_complete_retire(self):
        table = InstructionTable(capacity=2)
        entry = table.allocate(cc_copy(0, 0x1000, 128), total_ops=2)
        assert entry.generate_next() == 0
        assert entry.generate_next() == 1
        with pytest.raises(ReproError):
            entry.generate_next()
        entry.complete_op()
        assert not entry.done
        entry.complete_op()
        assert entry.done
        table.retire(entry.instr_id)
        assert len(table) == 0

    def test_capacity_enforced(self):
        table = InstructionTable(capacity=1)
        table.allocate(cc_copy(0, 0x1000, 64), total_ops=1)
        with pytest.raises(ReproError):
            table.allocate(cc_copy(0, 0x2000, 64), total_ops=1)

    def test_result_bits_pack_little_endian(self):
        table = InstructionTable()
        entry = table.allocate(cc_cmp(0, 0x1000, 128), total_ops=2)
        entry.complete_op(0xAB, 8)
        entry.complete_op(0xCD, 8)
        assert entry.result_mask == 0xCDAB

    def test_result_overflow_rejected(self):
        table = InstructionTable()
        entry = table.allocate(cc_cmp(0, 0x1000, 512), total_ops=8)
        for _ in range(8):
            entry.complete_op(0xFF, 8)
        assert entry.result_mask == 2**64 - 1
        with pytest.raises(ReproError):
            entry.complete_op(0x1, 8)

    def test_retire_incomplete_rejected(self):
        table = InstructionTable()
        entry = table.allocate(cc_copy(0, 0x1000, 128), total_ops=2)
        with pytest.raises(ReproError):
            table.retire(entry.instr_id)


class TestOperationTable:
    def _op(self, instr_id=0, op_index=0):
        return BlockOperation(
            instr_id=instr_id,
            op_index=op_index,
            subarray_op="and",
            operands=[
                BlockOperand(0x0, is_dest=False),
                BlockOperand(0x1000, is_dest=False),
                BlockOperand(0x2000, is_dest=True),
            ],
        )

    def test_lifecycle(self):
        table = OperationTable(capacity=4)
        op = table.allocate(self._op())
        assert op.status is OpStatus.WAITING
        for operand in op.operands:
            operand.status = OperandStatus.READY
        op.mark_ready_if_complete()
        assert op.status is OpStatus.READY
        op.status = OpStatus.DONE
        table.retire(0, 0)
        assert len(table) == 0

    def test_operand_views(self):
        op = self._op()
        assert len(op.source_operands) == 2
        assert op.dest_operand is not None and op.dest_operand.addr == 0x2000
        assert op.addresses == [0x0, 0x1000, 0x2000]

    def test_duplicate_rejected(self):
        table = OperationTable()
        table.allocate(self._op())
        with pytest.raises(ReproError):
            table.allocate(self._op())

    def test_capacity(self):
        table = OperationTable(capacity=1)
        table.allocate(self._op(op_index=0))
        with pytest.raises(ReproError):
            table.allocate(self._op(op_index=1))

    def test_retire_unfinished_rejected(self):
        table = OperationTable()
        table.allocate(self._op())
        with pytest.raises(ReproError):
            table.retire(0, 0)

    def test_pending_for(self):
        table = OperationTable()
        table.allocate(self._op(instr_id=1, op_index=0))
        table.allocate(self._op(instr_id=1, op_index=1))
        table.allocate(self._op(instr_id=2, op_index=0))
        assert len(table.pending_for(1)) == 2


class TestKeyTable:
    def test_replication_once_per_partition(self):
        """The point of the key table: no redundant key writes (VI-D)."""
        kt = KeyTable()
        assert kt.needs_replication(0, 0x100, "L3", 5)
        assert not kt.needs_replication(0, 0x100, "L3", 5)
        assert kt.needs_replication(0, 0x100, "L3", 6)
        assert kt.total_replications == 2
        assert kt.replications_avoided == 1

    def test_levels_tracked_separately(self):
        kt = KeyTable()
        assert kt.needs_replication(0, 0x100, "L1", 0)
        assert kt.needs_replication(0, 0x100, "L3", 0)

    def test_release_forgets(self):
        kt = KeyTable()
        kt.needs_replication(0, 0x100, "L3", 5)
        kt.release(0)
        assert kt.needs_replication(0, 0x100, "L3", 5)

    def test_instructions_independent(self):
        kt = KeyTable()
        kt.needs_replication(0, 0x100, "L3", 5)
        assert kt.needs_replication(1, 0x100, "L3", 5)

    def test_capacity_eviction(self):
        kt = KeyTable(capacity=1)
        kt.needs_replication(0, 0x100, "L3", 5)
        kt.needs_replication(1, 0x200, "L3", 5)  # evicts instr 0
        assert kt.needs_replication(0, 0x100, "L3", 5)  # must re-replicate

    def test_partitions_of(self):
        kt = KeyTable()
        kt.needs_replication(0, 0x100, "L3", 5)
        kt.needs_replication(0, 0x100, "L3", 9)
        assert kt.partitions_of(0) == {("L3", 5), ("L3", 9)}
