"""OS bulk-copy and packet-filter application tests."""

import pytest

from repro import ComputeCacheMachine
from repro.apps import os_copy, packet_filter
from repro.params import small_test_machine


class TestOSCopy:
    @pytest.fixture(scope="class")
    def workload(self):
        return os_copy.make_syscall_trace(seed=31, n_events=10)

    def test_trace_composition(self, workload):
        services = {service for service, _ in workload.events}
        assert services <= set(os_copy.SERVICES)
        assert workload.total_bytes > 0

    def test_both_variants_copy_exactly(self, workload):
        """run_os_copy asserts dst == src internally for every event."""
        for variant in ("base32", "cc"):
            res = os_copy.run_os_copy(
                workload, variant, ComputeCacheMachine(small_test_machine()))
            assert res.output == workload.total_bytes

    def test_cc_wins_cycles_and_instructions(self, workload):
        base = os_copy.run_os_copy(workload, "base32",
                                   ComputeCacheMachine(small_test_machine()))
        cc = os_copy.run_os_copy(workload, "cc",
                                 ComputeCacheMachine(small_test_machine()))
        assert cc.cycles < base.cycles
        assert cc.instructions < base.instructions / 5
        assert cc.energy.total() < base.energy.total()

    def test_per_service_breakdown(self, workload):
        res = os_copy.run_os_copy(workload, "cc",
                                  ComputeCacheMachine(small_test_machine()))
        breakdown = res.stats["per_service_cycles"]
        assert set(breakdown) == set(os_copy.SERVICES)
        active = {s for s, _ in workload.events}
        for service in active:
            assert breakdown[service] > 0

    def test_bandwidth_ordering(self):
        base_bw = os_copy.copy_bandwidth("base32", size=16 * 1024)
        cc_bw = os_copy.copy_bandwidth("cc", size=16 * 1024)
        assert cc_bw > 2 * base_bw

    def test_bad_variant(self, workload):
        with pytest.raises(ValueError):
            os_copy.run_os_copy(workload, "dma")


class TestPacketFilter:
    @pytest.fixture(scope="class")
    def workload(self):
        return packet_filter.make_workload(seed=33, n_packets=96, n_rules=4)

    @pytest.fixture(scope="class")
    def results(self, workload):
        base = packet_filter.run_packet_filter(
            workload, "baseline", ComputeCacheMachine(small_test_machine()))
        cc = packet_filter.run_packet_filter(
            workload, "cc", ComputeCacheMachine(small_test_machine()))
        return base, cc

    def test_reference_sane(self, workload):
        ref = packet_filter.reference_classify(workload)
        assert len(ref) == 96
        assert set(ref) <= {-1, 0, 1, 2, 3}
        assert any(v >= 0 for v in ref)

    def test_baseline_matches_reference(self, workload, results):
        assert results[0].output == packet_filter.reference_classify(workload)

    def test_cc_matches_reference(self, workload, results):
        assert results[1].output == packet_filter.reference_classify(workload)

    def test_cc_fewer_instructions(self, results):
        base, cc = results
        assert cc.instructions < base.instructions / 4

    def test_rule_semantics(self):
        rule = packet_filter.Rule(mask=b"\xff" + bytes(63),
                                  value=b"\x02" + bytes(63), action="drop")
        assert rule.matches(b"\x02" + b"\xAA" * 63)
        assert not rule.matches(b"\x03" + b"\xAA" * 63)

    def test_first_match_wins(self):
        """A packet matching several rules gets the lowest index."""
        mask = b"\x00" * 64  # match-all rules
        rules = (
            packet_filter.Rule(mask=mask, value=bytes(64), action="a"),
            packet_filter.Rule(mask=mask, value=bytes(64), action="b"),
        )
        headers = tuple(
            bytes([1]) + bytes(63) for _ in range(4)
        )
        wl = packet_filter.PacketWorkload(headers=headers, rules=rules)
        ref = packet_filter.reference_classify(wl)
        assert ref == [0, 0, 0, 0]
        cc = packet_filter.run_packet_filter(
            wl, "cc", ComputeCacheMachine(small_test_machine()))
        assert cc.output == ref

    def test_bad_variant(self, workload):
        with pytest.raises(ValueError):
            packet_filter.run_packet_filter(workload, "asic")
