"""End-to-end CC controller tests: functional exactness, level selection,
near-place fallback, pinning/RISC fallback, key replication."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cache.hierarchy import L1, L2, L3
from repro.params import BLOCK_SIZE, PAGE_SIZE


@pytest.fixture
def loaded(machine, make_bytes):
    """Machine with three co-located 512-byte buffers a, b, c."""
    a, b, c = machine.arena.alloc_colocated(512, 3)
    da, db = make_bytes(512), make_bytes(512)
    machine.load(a, da)
    machine.load(b, db)
    return machine, (a, da), (b, db), c


def np_bytes(data):
    return np.frombuffer(data, dtype=np.uint8)


class TestFunctionalExactness:
    """Every opcode's architectural effect matches the reference."""

    def test_copy(self, loaded):
        m, (a, da), _, c = loaded
        res = m.cc(cc_ops.cc_copy(a, c, 512))
        assert m.peek(c, 512) == da
        assert res.used_inplace

    def test_buz(self, loaded):
        m, (a, _), _, _ = loaded
        m.cc(cc_ops.cc_buz(a, 512))
        assert m.peek(a, 512) == bytes(512)

    def test_and_or_xor(self, loaded):
        m, (a, da), (b, db), c = loaded
        na, nb = np_bytes(da), np_bytes(db)
        m.cc(cc_ops.cc_and(a, b, c, 512))
        assert m.peek(c, 512) == (na & nb).tobytes()
        m.cc(cc_ops.cc_or(a, b, c, 512))
        assert m.peek(c, 512) == (na | nb).tobytes()
        m.cc(cc_ops.cc_xor(a, b, c, 512))
        assert m.peek(c, 512) == (na ^ nb).tobytes()

    def test_not(self, loaded):
        m, (a, da), _, c = loaded
        m.cc(cc_ops.cc_not(a, c, 512))
        assert m.peek(c, 512) == (~np_bytes(da)).astype(np.uint8).tobytes()

    def test_sources_unmodified(self, loaded):
        m, (a, da), (b, db), c = loaded
        m.cc(cc_ops.cc_xor(a, b, c, 512))
        assert m.peek(a, 512) == da
        assert m.peek(b, 512) == db

    def test_cmp_result_mask(self, machine, make_bytes):
        a, b = machine.arena.alloc_colocated(512, 2)
        data = make_bytes(512)
        other = bytearray(data)
        other[100] ^= 1  # word 12 (block 1, word 4)
        machine.load(a, data)
        machine.load(b, bytes(other))
        res = machine.cc(cc_ops.cc_cmp(a, b, 512))
        assert res.result == (2**64 - 1) & ~(1 << 12)

    def test_search_finds_key_blocks(self, machine, make_bytes):
        data_addr, key_addr = machine.arena.alloc_colocated(512, 2)
        key = make_bytes(64)
        blocks = [make_bytes(64) for _ in range(8)]
        blocks[2] = key
        blocks[5] = key
        machine.load(data_addr, b"".join(blocks))
        machine.load(key_addr, key)
        res = machine.cc(cc_ops.cc_search(data_addr, key_addr, 512))
        assert res.result == (1 << 2) | (1 << 5)

    def test_clmul_matches_reference(self, machine, make_bytes):
        a, b, c = machine.arena.alloc_colocated(512, 3)
        da, db = make_bytes(512), make_bytes(512)
        machine.load(a, da)
        machine.load(b, db)
        res = machine.cc(cc_ops.cc_clmul(a, b, c, 512, lane_bits=64))
        packed = res.result_bytes
        out = int.from_bytes(packed, "little")
        assert len(packed) == 8  # 64 lanes -> 64 bits
        for lane in range(64):
            ca = da[lane * 8 : (lane + 1) * 8]
            cb = db[lane * 8 : (lane + 1) * 8]
            ones = sum(bin(x & y).count("1") for x, y in zip(ca, cb))
            assert bool(out & (1 << lane)) == bool(ones & 1)
        assert machine.peek(c, 8) == packed

    def test_large_multi_page_operand(self, machine, make_bytes):
        """16 KB operands split across pages and still compute exactly."""
        a, b, c = machine.arena.alloc_colocated(8192, 3)
        da, db = make_bytes(8192), make_bytes(8192)
        machine.load(a, da)
        machine.load(b, db)
        res = machine.cc(cc_ops.cc_or(a, b, c, 8192))
        assert res.pieces == 2  # two pages
        assert machine.peek(c, 8192) == (np_bytes(da) | np_bytes(db)).tobytes()


class TestLevelSelection:
    """Compute at the highest level holding all operands, else L3 (IV-E)."""

    def test_uncached_goes_to_l3(self, loaded):
        m, (a, _), (b, _), c = loaded
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.level == L3

    def test_l1_resident_goes_to_l1(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.touch_range(a, 512)
        m.touch_range(b, 512)
        m.touch_range(c, 512, for_write=True)
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.level == L1
        assert m.peek(c, 512) == (
            np_bytes(m.peek(a, 512)) & np_bytes(m.peek(b, 512))
        ).tobytes()

    def test_l3_resident_goes_to_l3(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.warm_l3(a, 512)
        m.warm_l3(b, 512)
        m.warm_l3(c, 512)
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.level == L3

    def test_force_level(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.touch_range(a, 512)
        m.touch_range(b, 512)
        res = m.cc(cc_ops.cc_and(a, b, c, 512), force_level=L2)
        assert res.level == L2

    def test_partial_residency_goes_to_l3(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.touch_range(a, 512)  # only a is in L1
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.level == L3


class TestOperandLocalityRouting:
    def test_colocated_operands_run_inplace(self, loaded):
        m, (a, _), (b, _), c = loaded
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.inplace_ops == 8 and res.nearplace_ops == 0

    def test_misaligned_operands_fall_back_to_nearplace(self, machine, make_bytes):
        """Operands with different page offsets lack locality -> near-place,
        still functionally exact."""
        a = machine.arena.alloc_page_aligned(PAGE_SIZE)
        b = machine.arena.alloc_page_aligned(PAGE_SIZE)
        c = machine.arena.alloc_page_aligned(PAGE_SIZE)
        da, db = make_bytes(128), make_bytes(128)
        machine.load(a, da)
        machine.load(b + 128, db)  # offset by two blocks
        res = machine.cc(cc_ops.cc_and(a, b + 128, c, 128))
        assert res.nearplace_ops == 2 and res.inplace_ops == 0
        assert machine.peek(c, 128) == (np_bytes(da) & np_bytes(db)).tobytes()

    def test_force_nearplace(self, loaded):
        m, (a, da), _, c = loaded
        res = m.cc(cc_ops.cc_copy(a, c, 512), force_nearplace=True)
        assert res.nearplace_ops == 8
        assert m.peek(c, 512) == da

    def test_single_operand_always_inplace(self, machine, make_bytes):
        addr = machine.arena.alloc(512)  # no special alignment needed
        machine.load(addr, make_bytes(512))
        res = machine.cc(cc_ops.cc_buz(addr, 512))
        assert res.inplace_ops == 8


class TestPinningAndFallback:
    def test_contention_triggers_risc_fallback(self, loaded):
        """After pin_retry_limit failed attempts the op executes as RISC
        operations (Section IV-E starvation avoidance)."""
        m, (a, da), (b, db), c = loaded
        m.controllers[0].contention_hook = lambda addr: True
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.risc_ops == 8 and res.inplace_ops == 0
        assert m.controllers[0].stats.risc_fallbacks == 8
        assert m.peek(c, 512) == (np_bytes(da) & np_bytes(db)).tobytes()

    def test_transient_contention_retries(self, loaded):
        m, (a, da), _, c = loaded
        flags = iter([True] + [False] * 10_000)
        m.controllers[0].contention_hook = lambda addr: next(flags)
        res = m.cc(cc_ops.cc_copy(a, c, 512))
        assert res.risc_ops == 0
        assert m.controllers[0].stats.pin_retries >= 1
        assert m.peek(c, 512) == da

    def test_lines_unpinned_after_completion(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.cc(cc_ops.cc_and(a, b, c, 512))
        for addr in (a, b, c):
            for blk in range(addr, addr + 512, BLOCK_SIZE):
                slice_id = m.hierarchy.home_slice(blk, 0)
                assert not m.hierarchy.l3[slice_id].is_pinned(blk)


class TestKeyReplication:
    def test_key_written_once_per_partition(self, machine, make_bytes):
        data_addr, key_addr = machine.arena.alloc_colocated(512, 2)
        machine.load(data_addr, make_bytes(512))
        machine.load(key_addr, make_bytes(64))
        machine.cc(cc_ops.cc_search(data_addr, key_addr, 512))
        stats = machine.controllers[0].stats
        # 8 data blocks in 8 consecutive sets: every one in a distinct
        # partition of the small L3 (8 partitions) -> 8 replications.
        assert stats.key_replications == 8

    def test_same_partition_blocks_share_key(self, machine, make_bytes):
        """Data spanning > num_partitions blocks reuses replicated keys."""
        cfg = machine.config.l3_slice
        assert cfg.num_partitions == 8
        data_addr, key_addr = machine.arena.alloc_colocated(512, 2)
        machine.load(data_addr, make_bytes(512))
        machine.load(key_addr, make_bytes(64))
        machine.cc(cc_ops.cc_search(data_addr, key_addr, 512))
        assert machine.controllers[0].key_table.replications_avoided == 0


class TestInstructionStats:
    def test_counts_accumulate(self, loaded):
        m, (a, _), (b, _), c = loaded
        m.cc(cc_ops.cc_and(a, b, c, 512))
        m.cc(cc_ops.cc_copy(a, c, 512))
        stats = m.controllers[0].stats
        assert stats.instructions == 2
        assert stats.block_ops_inplace == 16

    def test_cycles_positive_and_decomposed(self, loaded):
        m, (a, _), (b, _), c = loaded
        res = m.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.cycles > 0
        assert res.cycles >= res.fetch_cycles + res.compute_cycles


class TestPinRetryLimit:
    """Fallback happens after EXACTLY ``pin_retry_limit`` failed pin
    attempts - identically on the batched and the sequential dispatch
    paths (regression for the historical off-by-one where ``limit + 1``
    failures were needed, and for the two paths diverging)."""

    @staticmethod
    def _counting_hook(max_fails):
        calls = {}

        def hook(addr):
            calls[addr] = calls.get(addr, 0) + 1
            return calls[addr] <= max_fails

        return hook, calls

    @pytest.mark.parametrize("force_nearplace", [False, True],
                             ids=["batched", "sequential"])
    def test_fallback_after_exactly_limit_failures(self, machine, make_bytes,
                                                   force_nearplace):
        limit = machine.config.cc.pin_retry_limit
        addr = machine.arena.alloc_page_aligned(512)
        machine.load(addr, make_bytes(512))
        hook, calls = self._counting_hook(limit)
        machine.controllers[0].contention_hook = hook
        res = machine.cc(cc_ops.cc_buz(addr, 512),
                         force_nearplace=force_nearplace)
        stats = machine.controllers[0].stats
        assert res.risc_ops == 8 and stats.risc_fallbacks == 8
        assert stats.pin_retries == 8 * limit
        # Exactly `limit` attempts per block op: the controller never
        # re-pins a (limit+1)-th time before falling back.
        assert max(calls.values()) == limit
        assert stats.fallback_reasons == {"pin-loss": 8}
        assert machine.peek(addr, 512) == bytes(512)  # RISC result exact

    @pytest.mark.parametrize("force_nearplace", [False, True],
                             ids=["batched", "sequential"])
    def test_limit_minus_one_failures_recover(self, machine, make_bytes,
                                              force_nearplace):
        limit = machine.config.cc.pin_retry_limit
        assert limit >= 2, "test needs room for a transient failure"
        addr = machine.arena.alloc_page_aligned(512)
        machine.load(addr, make_bytes(512))
        hook, _ = self._counting_hook(limit - 1)
        machine.controllers[0].contention_hook = hook
        res = machine.cc(cc_ops.cc_buz(addr, 512),
                         force_nearplace=force_nearplace)
        stats = machine.controllers[0].stats
        assert res.risc_ops == 0 and stats.risc_fallbacks == 0
        assert stats.pin_retries == 8 * (limit - 1)
        assert machine.peek(addr, 512) == bytes(512)
