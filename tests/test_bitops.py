"""Unit and property tests for :mod:`repro.bitops`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitops import (
    bits_to_bytes,
    bytes_and,
    bytes_not,
    bytes_or,
    bytes_to_bits,
    bytes_xor,
    chunk_range,
    parity,
    popcount_mask,
    word_equality_mask,
    xor_reduce_lanes,
)
from repro.errors import AddressError


class TestBitConversion:
    def test_round_trip_simple(self):
        data = bytes(range(64))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=256))
    def test_round_trip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bit_count(self):
        assert bytes_to_bits(b"\xff\x00").sum() == 8

    def test_msb_first_order(self):
        bits = bytes_to_bits(b"\x80")
        assert bits[0] and not bits[1:].any()

    def test_non_byte_multiple_rejected(self):
        with pytest.raises(AddressError):
            bits_to_bytes(np.zeros(9, dtype=bool))


class TestWordEqualityMask:
    def test_all_equal(self):
        xor = np.zeros(512, dtype=bool)
        assert word_equality_mask(xor) == 0xFF

    def test_no_words_equal(self):
        xor = np.ones(512, dtype=bool)
        assert word_equality_mask(xor) == 0

    def test_single_word_mismatch(self):
        xor = np.zeros(512, dtype=bool)
        xor[3 * 64 + 17] = True  # word 3 differs in one bit
        assert word_equality_mask(xor) == 0xFF & ~(1 << 3)

    def test_wrong_size_rejected(self):
        with pytest.raises(AddressError):
            word_equality_mask(np.zeros(100, dtype=bool))

    def test_empty_input_is_zero(self):
        assert word_equality_mask(np.zeros(0, dtype=bool)) == 0

    def test_bit_order_word0_is_bit0(self):
        """Regression: the mask is little-endian in words - the
        lowest-addressed word (word 0) occupies bit 0, not bit 63."""
        xor = np.ones(512, dtype=bool)
        xor[:64] = False  # only word 0 equal
        assert word_equality_mask(xor) == 0b1
        xor = np.ones(512, dtype=bool)
        xor[7 * 64 :] = False  # only the last word equal
        assert word_equality_mask(xor) == 0b1000_0000

    def test_bit_order_full_register(self):
        """64 words fill the 64-bit result register; word 63 -> bit 63."""
        xor = np.ones(64 * 64, dtype=bool)
        xor[63 * 64 :] = False
        assert word_equality_mask(xor) == 1 << 63

    def test_narrow_words(self):
        xor = np.zeros(64, dtype=bool)
        xor[3 * 8] = True  # 8-bit words: word 3 differs
        assert word_equality_mask(xor, word_bits=8) == 0xFF & ~(1 << 3)

    @given(st.binary(min_size=512, max_size=512),
           st.binary(min_size=512, max_size=512))
    def test_matches_python_reference(self, a, b):
        xor = bytes_to_bits(bytes_xor(a, b))
        mask = word_equality_mask(xor)
        for i in range(64):
            word_equal = a[i * 8 : (i + 1) * 8] == b[i * 8 : (i + 1) * 8]
            assert bool(mask & (1 << i)) == word_equal

    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    def test_mask_matches_per_word(self, mismatches):
        xor = np.zeros(512, dtype=bool)
        for i, mismatch in enumerate(mismatches):
            if mismatch:
                xor[i * 64] = True
        mask = word_equality_mask(xor)
        for i, mismatch in enumerate(mismatches):
            assert bool(mask & (1 << i)) == (not mismatch)


class TestXorReduceLanes:
    def test_zero_input(self):
        assert not xor_reduce_lanes(np.zeros(512, dtype=bool), 64).any()

    def test_single_bit_per_lane(self):
        bits = np.zeros(512, dtype=bool)
        bits[0] = True  # lane 0 parity 1
        bits[64] = bits[65] = True  # lane 1 parity 0
        lanes = xor_reduce_lanes(bits, 64)
        assert lanes[0] and not lanes[1]

    @given(st.binary(min_size=64, max_size=64))
    def test_matches_popcount_parity(self, data):
        bits = bytes_to_bits(data)
        lanes = xor_reduce_lanes(bits, 64)
        for i in range(8):
            lane_bytes = data[i * 8 : (i + 1) * 8]
            ones = sum(bin(b).count("1") for b in lane_bytes)
            assert lanes[i] == bool(ones & 1)

    def test_bad_lane_size(self):
        with pytest.raises(AddressError):
            xor_reduce_lanes(np.zeros(512, dtype=bool), 100)


class TestByteWiseOps:
    @given(st.binary(min_size=8, max_size=64), st.binary(min_size=8, max_size=64))
    def test_ops_match_int_arithmetic(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        ia, ib = int.from_bytes(a, "little"), int.from_bytes(b, "little")
        assert int.from_bytes(bytes_xor(a, b), "little") == ia ^ ib
        assert int.from_bytes(bytes_and(a, b), "little") == ia & ib
        assert int.from_bytes(bytes_or(a, b), "little") == ia | ib

    def test_not_involution(self):
        data = bytes(range(64))
        assert bytes_not(bytes_not(data)) == data

    def test_length_mismatch(self):
        with pytest.raises(AddressError):
            bytes_xor(b"\x00", b"\x00\x00")

    def test_zero_length_inputs(self):
        """Regression: every byte-wise op returns ``b""`` (the immutable
        bytes type, not a bytearray or numpy scalar) on empty input."""
        for fn in (bytes_xor, bytes_and, bytes_or):
            out = fn(b"", b"")
            assert out == b"" and type(out) is bytes
        out = bytes_not(b"")
        assert out == b"" and type(out) is bytes

    def test_zero_length_mismatch_still_rejected(self):
        with pytest.raises(AddressError):
            bytes_xor(b"", b"\x00")


class TestParityPopcount:
    @given(st.integers(min_value=0, max_value=2**70))
    def test_parity(self, v):
        assert parity(v) == bin(v).count("1") % 2

    def test_popcount(self):
        assert popcount_mask(0b1011) == 3
        assert popcount_mask(0) == 0


class TestChunkRange:
    def test_aligned_blocks(self):
        pieces = list(chunk_range(0, 256, 64))
        assert pieces == [(0, 64), (64, 64), (128, 64), (192, 64)]

    def test_unaligned_start(self):
        pieces = list(chunk_range(50, 100, 64))
        assert pieces == [(50, 14), (64, 64), (128, 22)]

    def test_empty(self):
        assert list(chunk_range(10, 0, 64)) == []

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            list(chunk_range(0, -1, 64))

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=5_000),
        st.sampled_from([64, 128, 4096]),
    )
    def test_pieces_cover_range(self, start, size, chunk):
        pieces = list(chunk_range(start, size, chunk))
        assert sum(p for _, p in pieces) == size
        cursor = start
        for addr, length in pieces:
            assert addr == cursor
            assert addr // chunk == (addr + length - 1) // chunk or length == 0
            cursor += length
