"""Stateful model test for the compute sub-array.

Hypothesis drives a random interleaving of writes, reads, and every
in-place operation against a numpy mirror; the sub-array must agree with
the mirror at every step (reads, op results, and non-destructiveness)."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sram import ComputeSubarray

ROWS = 6
COLS = 256  # 32-byte rows keep the model fast

rows_st = st.integers(0, ROWS - 1)
data_st = st.binary(min_size=COLS // 8, max_size=COLS // 8)


class SubarrayMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sub = ComputeSubarray(rows=ROWS, cols=COLS)
        self.mirror = [bytes(COLS // 8) for _ in range(ROWS)]

    def _np(self, row):
        return np.frombuffer(self.mirror[row], dtype=np.uint8)

    @rule(row=rows_st, data=data_st)
    def write(self, row, data):
        self.sub.write_block(row, data)
        self.mirror[row] = data

    @rule(row=rows_st)
    def read(self, row):
        assert self.sub.read_block(row) == self.mirror[row]

    @rule(a=rows_st, b=rows_st, dest=rows_st)
    def op_and(self, a, b, dest):
        out = self.sub.op_and(a, b, dest=dest)
        expected = (self._np(a) & self._np(b)).tobytes()
        assert out == expected
        self.mirror[dest] = expected

    @rule(a=rows_st, b=rows_st, dest=rows_st)
    def op_or(self, a, b, dest):
        out = self.sub.op_or(a, b, dest=dest)
        expected = (self._np(a) | self._np(b)).tobytes()
        assert out == expected
        self.mirror[dest] = expected

    @rule(a=rows_st, b=rows_st, dest=rows_st)
    def op_xor(self, a, b, dest):
        out = self.sub.op_xor(a, b, dest=dest)
        expected = (self._np(a) ^ self._np(b)).tobytes()
        assert out == expected
        self.mirror[dest] = expected

    @rule(src=rows_st, dest=rows_st)
    def op_not(self, src, dest):
        out = self.sub.op_not(src, dest=dest)
        expected = (~self._np(src)).astype(np.uint8).tobytes()
        assert out == expected
        self.mirror[dest] = expected

    @rule(src=rows_st, dest=rows_st)
    def op_copy(self, src, dest):
        self.sub.op_copy(src, dest)
        self.mirror[dest] = self.mirror[src]

    @rule(row=rows_st)
    def op_buz(self, row):
        self.sub.op_buz(row)
        self.mirror[row] = bytes(COLS // 8)

    @rule(a=rows_st, b=rows_st)
    def op_cmp(self, a, b):
        mask = self.sub.op_cmp(a, b)
        for w in range(COLS // 64):
            lhs = self.mirror[a][w * 8 : (w + 1) * 8]
            rhs = self.mirror[b][w * 8 : (w + 1) * 8]
            assert bool(mask >> w & 1) == (lhs == rhs)

    @rule(a=rows_st, b=rows_st)
    def op_clmul(self, a, b):
        packed = self.sub.op_clmul(a, b, 64)
        bits = int.from_bytes(packed, "little")
        anded = (self._np(a) & self._np(b)).tobytes()
        for lane in range(COLS // 64):
            ones = sum(bin(x).count("1") for x in anded[lane * 8 : (lane + 1) * 8])
            assert bool(bits >> lane & 1) == bool(ones & 1)

    @invariant()
    def all_rows_match_mirror(self):
        for row in range(ROWS):
            assert self.sub.read_block(row) == self.mirror[row], f"row {row}"


SubarrayMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None,
)
TestSubarrayStateful = SubarrayMachine.TestCase
