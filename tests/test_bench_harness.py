"""Fast tests of the bench harness itself (report rendering, kernel runner,
CLI plumbing) - the heavyweight shape checks live in benchmarks/."""

import pytest

from repro.bench.microbench import (
    KernelMeasurement,
    run_kernel,
    table1_rows,
    table3_rows,
    table5_rows,
)
from repro.bench.report import (
    render_breakdown,
    render_figure10,
    render_figure11,
    render_table,
)
from repro.cli import build_parser, main
from repro.energy.accounting import EnergyLedger
from repro.params import small_test_machine


class TestReportRendering:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = render_table(rows, "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(empty)" in render_table([], "nothing")

    def test_float_formatting(self):
        text = render_table([{"v": 123456.789}, {"v": 0.123456}, {"v": 0.0}])
        assert "123,457" in text
        assert "0.123" in text

    def test_render_breakdown(self):
        ledger = EnergyLedger()
        ledger.add("core", 1500.0)
        text = render_breakdown(ledger, "B")
        assert "core" in text and "1.50" in text

    def test_render_fig10_fig11(self):
        overheads = {"fmm": {"base": 0.1, "base32": 0.05, "cc": 0.01}}
        assert "fmm" in render_figure10(overheads)
        energies = {"fmm": {"no_chkpt": 1.0, "base": 2.0, "base32": 1.5, "cc": 1.1}}
        assert "no_chkpt" in render_figure11(energies)


class TestRunKernel:
    def test_all_kernels_all_configs_small(self):
        for kernel in ("copy", "compare", "search", "logical"):
            for config in ("scalar", "base32", "cc", "cc_near"):
                meas = run_kernel(kernel, config, size=512,
                                  machine_config=small_test_machine())
                assert meas.cycles > 0
                assert meas.dynamic.total() > 0
                assert meas.total_energy_nj > meas.dynamic.total_nj()

    def test_unknown_kernel_config(self):
        with pytest.raises(ValueError):
            run_kernel("sort", "cc", size=512,
                       machine_config=small_test_machine())
        with pytest.raises(ValueError):
            run_kernel("copy", "tpu", size=512,
                       machine_config=small_test_machine())

    def test_measurement_derived_metrics(self):
        meas = KernelMeasurement(
            kernel="copy", config="cc", cycles=100.0, steady_cycles=50.0,
            instructions=1, dynamic=EnergyLedger(), bytes_processed=4096,
        )
        assert meas.throughput_bytes_per_cycle == pytest.approx(81.92)
        assert meas.throughput_mops(2.0) == pytest.approx(4096 / 8 / (50 / 2e9) / 1e6)


class TestTablesFast:
    def test_row_shapes(self):
        assert len(table1_rows()) == 3
        assert len(table3_rows()) == 3
        assert len(table5_rows()) == 3
        assert {r["cache"] for r in table5_rows()} == {"L1-D", "L2", "L3-slice"}


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("tables", "fig3", "fig7", "fig8", "fig9", "fig10",
                        "fig11", "sweeps", "demo"):
            args = parser.parse_args([command])
            assert callable(args.fn)

    def test_runner_flags_on_figure_and_export_commands(self):
        parser = build_parser()
        for command in ("fig7", "fig8", "fig9", "fig10", "fig11", "sweeps",
                        "export"):
            args = parser.parse_args([command, "--jobs", "3", "--no-cache",
                                      "--cache-dir", "/tmp/cc-cache"])
            assert args.jobs == 3
            assert args.no_cache is True
            assert args.cache_dir == "/tmp/cc-cache"
        defaults = parser.parse_args(["fig7"])
        assert defaults.jobs == 1 and defaults.no_cache is False
        assert defaults.cache_dir == ".repro-cache"

    def test_tables_command_runs(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table V" in out

    def test_demo_command_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "cc_and over 4 KB" in out
        assert "level=L3" in out
