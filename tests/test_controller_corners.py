"""Controller corner cases: splits, occupancy, table pressure, aliasing."""

from dataclasses import replace

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cache.hierarchy import L3
from repro.params import BLOCK_SIZE, PAGE_SIZE, small_test_machine


@pytest.fixture
def m():
    return ComputeCacheMachine(small_test_machine())


class TestPageSplitIntegration:
    def test_split_counted_and_correct(self, m, make_bytes):
        region = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
        dst_region = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
        a = region + PAGE_SIZE - 2 * BLOCK_SIZE
        c = dst_region + PAGE_SIZE - 2 * BLOCK_SIZE
        data = make_bytes(4 * BLOCK_SIZE)
        m.load(a, data)
        res = m.cc(cc_ops.cc_copy(a, c, 4 * BLOCK_SIZE))
        assert res.pieces == 2
        assert m.controllers[0].stats.page_splits == 1
        assert m.peek(c, 4 * BLOCK_SIZE) == data

    def test_cmp_result_spans_pieces(self, m, make_bytes):
        """A split cc_cmp still packs its 64-bit mask contiguously."""
        region = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
        other = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
        a = region + PAGE_SIZE - BLOCK_SIZE
        b = other + PAGE_SIZE - BLOCK_SIZE
        data = make_bytes(2 * BLOCK_SIZE)
        mutated = bytearray(data)
        mutated[8 * 9] ^= 1   # word 9 (block 1, word 1) differs
        m.load(a, data)
        m.load(b, bytes(mutated))
        res = m.cc(cc_ops.cc_cmp(a, b, 2 * BLOCK_SIZE))
        assert res.pieces == 2
        assert res.result == (0xFFFF & ~(1 << 9))


class TestOccupancyModel:
    def test_occupancy_below_latency(self, m, make_bytes):
        a, c = m.arena.alloc_colocated(1024, 2)
        m.load(a, make_bytes(1024))
        m.warm_l3(a, 1024)
        m.warm_l3(c, 1024)
        res = m.cc(cc_ops.cc_copy(a, c, 1024))
        assert 0 < res.occupancy_cycles <= res.cycles

    def test_occupancy_scales_with_blocks(self, m, make_bytes):
        sizes = (256, 1024)
        occupancies = []
        for size in sizes:
            a, c = m.arena.alloc_colocated(size, 2)
            m.load(a, make_bytes(size))
            occupancies.append(m.cc(cc_ops.cc_copy(a, c, size)).occupancy_cycles)
        assert occupancies[1] > occupancies[0]

    def test_nearplace_occupancy_includes_logic_unit(self, m, make_bytes):
        a, c = m.arena.alloc_colocated(512, 2)
        m.load(a, make_bytes(512))
        inp = m.cc(cc_ops.cc_copy(a, c, 512))
        near = m.cc(cc_ops.cc_copy(a, c, 512), force_nearplace=True)
        assert near.occupancy_cycles > inp.occupancy_cycles


class TestOperandAliasing:
    def test_accumulate_into_source(self, m, make_bytes):
        """c = a | c (destination aliases a source) - the DB-BitMap
        accumulation pattern."""
        a, c = m.arena.alloc_colocated(256, 2)
        da, dc = make_bytes(256), make_bytes(256)
        m.load(a, da)
        m.load(c, dc)
        m.cc(cc_ops.cc_or(a, c, c, 256))
        expected = bytes(x | y for x, y in zip(da, dc))
        assert m.peek(c, 256) == expected

    def test_self_copy_is_identity(self, m, make_bytes):
        data = make_bytes(128)
        a, c = m.arena.alloc_colocated(128, 2)
        m.load(a, data)
        m.cc(cc_ops.cc_copy(a, c, 128))
        m.cc(cc_ops.cc_copy(c, a, 128))
        assert m.peek(a, 128) == data


class TestSearchCorners:
    def test_key_equal_to_empty_block_matches_empty_slots(self, m):
        """An all-zero key matches zeroed blocks - software must avoid
        zero keys or zero-fill guards (documented hazard)."""
        data, key = m.arena.alloc_colocated(256, 2)
        m.load(data, bytes(256))
        res = m.cc(cc_ops.cc_search(data, key, 256))
        assert res.result == 0b1111

    def test_search_at_l1(self, m, make_bytes):
        data, key = m.arena.alloc_colocated(256, 2)
        blocks = [make_bytes(64) for _ in range(4)]
        m.load(data, b"".join(blocks))
        m.load(key, blocks[3])
        m.touch_range(data, 256)
        m.touch_range(key, 64)
        res = m.cc(cc_ops.cc_search(data, key, 256))
        assert res.level == "L1"
        assert res.result == 0b1000

    def test_search_force_nearplace_same_result(self, m, make_bytes):
        data, key = m.arena.alloc_colocated(256, 2)
        blocks = [make_bytes(64) for _ in range(4)]
        m.load(data, b"".join(blocks))
        m.load(key, blocks[1])
        inp = m.cc(cc_ops.cc_search(data, key, 256))
        near = m.cc(cc_ops.cc_search(data, key, 256), force_nearplace=True)
        assert inp.result == near.result == 0b0010


class TestL3EvictionUnderCC:
    def test_cc_data_survives_l3_pressure(self, m, make_bytes):
        """CC-written blocks evicted from L3 reach memory intact."""
        a, c = m.arena.alloc_colocated(256, 2)
        data = make_bytes(256)
        m.load(a, data)
        m.cc(cc_ops.cc_copy(a, c, 256))
        # Thrash the L3 slice with conflicting traffic.
        cfg = m.config.l3_slice
        stride = cfg.sets * cfg.block_size
        slice_id = m.hierarchy.home_slice(c, 0)
        for i in range(1, 3 * cfg.ways):
            victim = c + i * stride
            if victim + 64 <= m.config.memory_size:
                m.hierarchy.place_page(victim, slice_id)
                m.read(victim, 8)
        assert m.peek(c, 256) == data

    def test_force_level_l3_functional(self, m, make_bytes):
        a, c = m.arena.alloc_colocated(256, 2)
        data = make_bytes(256)
        m.load(a, data)
        m.touch_range(a, 256)
        res = m.cc(cc_ops.cc_copy(a, c, 256), force_level=L3)
        assert res.level == L3
        assert m.peek(c, 256) == data
        # Stale private copies of the destination were invalidated.
        assert not m.hierarchy.l1[0].contains(c)


class TestInjectedPinSteals:
    """Starvation avoidance under injected pin steals (Section IV-E):
    the RISC fallback engages after *exactly* ``pin_retry_limit`` failed
    attempts, and results stay correct either way."""

    def _machine(self, limit):
        cfg = small_test_machine()
        cfg = replace(cfg, cc=replace(cfg.cc, pin_retry_limit=limit),
                      trace_events=True)
        return ComputeCacheMachine(cfg)

    @pytest.mark.parametrize("limit", [1, 2, 3, 5])
    def test_risc_fallback_after_exactly_limit(self, make_bytes, limit):
        m = self._machine(limit)
        a, b, c = m.arena.alloc_colocated(BLOCK_SIZE, 3)
        da, db = make_bytes(BLOCK_SIZE), make_bytes(BLOCK_SIZE)
        m.load(a, da)
        m.load(b, db)
        ctrl = m.controllers[0]
        ctrl.contention_hook = lambda addr: True  # every pin is stolen
        m.cc(cc_ops.cc_and(a, b, c, BLOCK_SIZE))
        retries = [e for e in m.tracer.snapshot() if e.kind == "cc.pin_retry"]
        assert len(retries) == limit
        assert ctrl.stats.risc_fallbacks == 1
        fallbacks = [e for e in m.tracer.snapshot()
                     if e.kind == "fault.recover"
                     and e.outcome == "degraded-risc"]
        assert len(fallbacks) == 1
        assert m.peek(c, BLOCK_SIZE) == bytes(
            x & y for x, y in zip(da, db))

    def test_recovery_before_limit_emits_retried(self, make_bytes):
        m = self._machine(3)
        a, b, c = m.arena.alloc_colocated(BLOCK_SIZE, 3)
        da, db = make_bytes(BLOCK_SIZE), make_bytes(BLOCK_SIZE)
        m.load(a, da)
        m.load(b, db)
        ctrl = m.controllers[0]
        steals = iter([True])  # steal once, then let the retry succeed
        ctrl.contention_hook = lambda addr: next(steals, False)
        m.cc(cc_ops.cc_and(a, b, c, BLOCK_SIZE))
        assert ctrl.stats.risc_fallbacks == 0
        recoveries = [e for e in m.tracer.snapshot()
                      if e.kind == "fault.recover" and e.outcome == "retried"]
        assert len(recoveries) == 1
        assert recoveries[0].reason == "pin-loss"
        assert m.peek(c, BLOCK_SIZE) == bytes(
            x & y for x, y in zip(da, db))
