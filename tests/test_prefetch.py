"""Stride-prefetcher tests: training, coverage, and the streaming-
annotation justification."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetch import (
    StreamEntry,
    StridePrefetcher,
    validate_streaming_annotation,
)
from repro.energy.accounting import EnergyLedger
from repro.params import BLOCK_SIZE, small_test_machine


@pytest.fixture
def hier(small_config):
    return CacheHierarchy(small_config, EnergyLedger())


class TestStreamEntry:
    def test_training_needs_two_matching_strides(self):
        entry = StreamEntry(last_block=0)
        assert not entry.observe(64)        # first stride observed
        assert entry.observe(128)           # confirmed
        assert entry.stride == 64

    def test_stride_change_resets(self):
        entry = StreamEntry(last_block=0)
        entry.observe(64)
        entry.observe(128)
        assert not entry.observe(512)       # stride broke
        assert entry.stride == 384

    def test_zero_stride_never_confident(self):
        entry = StreamEntry(last_block=64)
        for _ in range(5):
            assert not entry.observe(64)


class TestStridePrefetcher:
    def test_sequential_stream_gets_prefetched(self, hier):
        pf = StridePrefetcher(hier, core=0, degree=2)
        issued = []
        for i in range(6):
            issued += pf.access(i * BLOCK_SIZE)
        assert pf.stats.trainings >= 1
        assert issued  # something was prefetched ahead
        # Prefetched blocks are resident before their demand access.
        assert any(hier.l1[0].contains(b) for b in issued)

    def test_prefetch_hits_counted(self, hier):
        pf = StridePrefetcher(hier, core=0, degree=4)
        for i in range(16):
            pf.access(i * BLOCK_SIZE)
        assert pf.stats.prefetch_hits > 0
        assert pf.accuracy > 0.5

    def test_random_stream_never_trains(self, hier):
        pf = StridePrefetcher(hier, core=0)
        for block in (0, 17, 5, 90, 33, 71):
            pf.access(block * BLOCK_SIZE)
        assert pf.stats.prefetches_issued == 0

    def test_descending_stride(self, hier):
        pf = StridePrefetcher(hier, core=0, degree=1)
        base = 64 * BLOCK_SIZE
        issued = []
        for i in range(5):
            issued += pf.access(base - i * BLOCK_SIZE)
        assert issued and all(b < base for b in issued)

    def test_table_eviction(self, hier):
        pf = StridePrefetcher(hier, core=0, table_size=2)
        for region in range(4):
            pf.access(region << 14)
        assert len(pf._streams) <= 2

    def test_bounds_respected(self, hier):
        """Prefetches never run past the end of memory."""
        pf = StridePrefetcher(hier, core=0, degree=8)
        top = hier.config.memory_size
        for i in range(5, 0, -1):
            pf.access(top - i * BLOCK_SIZE)
        # No exception and nothing prefetched beyond memory.
        assert all(b + BLOCK_SIZE <= top for b in pf._prefetched)


class TestStreamingAnnotationJustified:
    def test_sequential_scan_coverage(self, hier):
        """The core model charges streaming loads zero stall: the
        prefetcher must cover (nearly) every post-training access."""
        result = validate_streaming_annotation(hier, core=0,
                                               base=0, blocks=32)
        assert result["coverage_after_training"] > 0.85
        assert result["accuracy"] > 0.8

    def test_coverage_reported_sanely(self, hier):
        result = validate_streaming_annotation(hier, core=0,
                                               base=0x8000, blocks=8)
        assert 0.0 <= result["coverage"] <= 1.0
        assert result["prefetches"] >= 1
