"""Property tests for the multi-cluster NUMA topology.

Three guarantees the topology layer makes, checked over generated
configurations:

* the gateway-routed hop-cost function is a metric — symmetric and
  triangle-inequality-respecting — for *any* (clusters x stops) shape;
* a 1-cluster :class:`ClusterInterconnect` is bit-identical to the flat
  pre-topology :class:`RingInterconnect` (golden compatibility);
* ``"page"`` slice interleaving partitions the address space — every
  page homed on exactly one slice, no overlap, no gap.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.ring import RingInterconnect
from repro.cache.topology import ClusterInterconnect, ring_distance
from repro.energy.accounting import EnergyLedger
from repro.errors import ConfigError
from repro.params import (
    PAGE_SIZE,
    RingConfig,
    TopologyConfig,
    multi_cluster,
)


@st.composite
def clustered_rings(draw) -> tuple[RingConfig, TopologyConfig]:
    """Any valid (ring, topology) pair: stops = clusters x stops/cluster."""
    clusters = draw(st.integers(1, 6))
    stops_per_cluster = draw(st.integers(1, 6))
    ring = RingConfig(
        stops=clusters * stops_per_cluster,
        hop_latency=draw(st.integers(1, 8)),
    )
    topology = TopologyConfig(
        clusters=clusters,
        inter_hop_latency=draw(st.integers(0, 64)),
        inter_link_width_bits=draw(st.sampled_from([128, 256, 512])),
    )
    return ring, topology


@st.composite
def rings_with_stops(draw, n: int = 3):
    """A clustered ring plus ``n`` (not necessarily distinct) stops."""
    ring, topology = draw(clustered_rings())
    stops = [draw(st.integers(0, ring.stops - 1)) for _ in range(n)]
    return ring, topology, stops


class TestHopMetric:
    @given(rings_with_stops(n=2))
    @settings(max_examples=200, deadline=None)
    def test_symmetry(self, case):
        ring, topology, (a, b) = case
        ci = ClusterInterconnect(ring, topology)
        assert ci.hops(a, b) == ci.hops(b, a)
        for data in (False, True):
            assert ci.latency(a, b, data) == ci.latency(b, a, data)
        assert ci.block_transfer_energy(a, b) == ci.block_transfer_energy(b, a)

    @given(rings_with_stops(n=2))
    @settings(max_examples=200, deadline=None)
    def test_identity_of_indiscernibles(self, case):
        ring, topology, (a, b) = case
        ci = ClusterInterconnect(ring, topology)
        assert (ci.hops(a, b) == 0) == (a == b)
        assert ci.latency(a, a, data=False) == 0

    @given(rings_with_stops(n=3))
    @settings(max_examples=300, deadline=None)
    def test_triangle_inequality(self, case):
        ring, topology, (a, b, c) = case
        ci = ClusterInterconnect(ring, topology)
        assert ci.hops(a, c) <= ci.hops(a, b) + ci.hops(b, c)
        for data in (False, True):
            assert (ci.latency(a, c, data)
                    <= ci.latency(a, b, data) + ci.latency(b, c, data))
        assert (ci.block_transfer_energy(a, c)
                <= ci.block_transfer_energy(a, b)
                + ci.block_transfer_energy(b, c))

    @given(rings_with_stops(n=2))
    @settings(max_examples=200, deadline=None)
    def test_route_components_bounded(self, case):
        """Inter hops never exceed half the cluster ring; intra hops never
        exceed one half-sub-ring per endpoint."""
        ring, topology, (a, b) = case
        ci = ClusterInterconnect(ring, topology)
        intra, inter = ci.route(a, b)
        assert 0 <= inter <= topology.clusters // 2
        assert 0 <= intra <= 2 * (ci.stops_per_cluster // 2)
        if ci.cluster_of(a) == ci.cluster_of(b):
            assert inter == 0

    def test_stops_must_divide_into_clusters(self):
        with pytest.raises(ConfigError):
            ClusterInterconnect(RingConfig(stops=6),
                                TopologyConfig(clusters=4))


class TestFlatRingReduction:
    """clusters=1 must be indistinguishable from the pre-topology ring."""

    @given(rings_with_stops(n=2))
    @settings(max_examples=200, deadline=None)
    def test_costs_identical(self, case):
        ring, _topology, (a, b) = case
        flat = RingInterconnect(ring)
        one = ClusterInterconnect(ring, TopologyConfig(clusters=1))
        assert one.hops(a, b) == flat.hops(a, b)
        for data in (False, True):
            assert one.latency(a, b, data) == flat.latency(a, b, data)
        assert (one.block_transfer_energy(a, b)
                == flat.block_transfer_energy(a, b))

    @given(rings_with_stops(n=2))
    @settings(max_examples=100, deadline=None)
    def test_accounting_identical(self, case):
        """Same messages -> same stats, same ledger, no inter traffic."""
        ring, _topology, (a, b) = case
        ledgers = (EnergyLedger(), EnergyLedger())
        flat = RingInterconnect(ring, ledgers[0])
        one = ClusterInterconnect(ring, TopologyConfig(clusters=1),
                                  ledgers[1])
        for net in (flat, one):
            net.send_control(a, b)
            net.send_block(b, a)
            net.send_block(a, a)
        assert vars(one.stats) == vars(flat.stats)
        assert ledgers[1].pj == ledgers[0].pj
        assert one.topo_stats.inter_messages == 0
        assert one.topo_stats.inter_energy_pj == 0.0

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_multi_cluster_charges_more(self, clusters, spc):
        """With >=2 clusters some pair is strictly slower than flat — the
        topology is not a no-op beyond one cluster."""
        ring = RingConfig(stops=clusters * spc)
        flat = RingInterconnect(ring)
        multi = ClusterInterconnect(ring, TopologyConfig(clusters=clusters))
        pairs = [(a, b) for a in range(ring.stops) for b in range(ring.stops)]
        assert any(multi.latency(a, b, data=False)
                   > flat.latency(a, b, data=False) for a, b in pairs)


class TestRingDistance:
    @given(st.integers(1, 32), st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_ring_distance_is_a_metric(self, stops, a, b):
        a, b = a % stops, b % stops
        assert ring_distance(a, b, stops) == ring_distance(b, a, stops)
        assert (ring_distance(a, b, stops) == 0) == (a == b)
        assert ring_distance(a, b, stops) <= stops // 2


class TestSlicedL3Partition:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 512))
    @settings(max_examples=60, deadline=None)
    def test_page_interleave_partitions_address_space(
            self, clusters, cores_per_cluster, first_page):
        """``"page"`` interleaving: every page homes on exactly one slice,
        and any window of ``l3_slices`` consecutive pages covers every
        slice exactly once — no overlap, no gap."""
        config = multi_cluster(clusters, cores_per_cluster,
                               slice_interleave="page")
        hierarchy = CacheHierarchy(config, EnergyLedger())
        slices = config.l3_slices
        window = [hierarchy.home_slice(page * PAGE_SIZE, core=0)
                  for page in range(first_page, first_page + slices)]
        assert sorted(window) == list(range(slices))

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 64),
           st.integers(0, PAGE_SIZE - 1))
    @settings(max_examples=60, deadline=None)
    def test_home_is_page_granular_and_stable(
            self, clusters, cores_per_cluster, page, offset):
        """Every address of a page homes on that page's slice, from any
        core, and repeated lookups agree (no reassignment)."""
        config = multi_cluster(clusters, cores_per_cluster,
                               slice_interleave="page")
        hierarchy = CacheHierarchy(config, EnergyLedger())
        base = page * PAGE_SIZE
        home = hierarchy.home_slice(base, core=0)
        assert 0 <= home < config.l3_slices
        other_core = (config.cores - 1)
        assert hierarchy.home_slice(base + offset, core=other_core) == home
        assert hierarchy.home_slice(base, core=0) == home

    def test_first_touch_honours_explicit_placement(self):
        """``place_page`` pins a page's home before first touch — the
        NUMA lever ``repro streambw``'s hub placement uses."""
        config = multi_cluster(2, 2)
        hierarchy = CacheHierarchy(config, EnergyLedger())
        target = config.l3_slices - 1
        hierarchy.place_page(0, target)
        assert hierarchy.home_slice(0, core=0) == target


class TestTopologyConfigValidation:
    def test_defaults_are_flat(self):
        assert TopologyConfig().clusters == 1

    @pytest.mark.parametrize("kwargs", [
        {"clusters": 0},
        {"clusters": -1},
        {"inter_hop_latency": -1},
        {"inter_energy_per_hop_per_flit": -0.5},
        {"inter_link_width_bits": 100},
        {"slice_interleave": "striped"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            TopologyConfig(**kwargs)

    def test_machine_validates_cluster_divisibility(self):
        base = multi_cluster(2, 2)
        with pytest.raises(ConfigError):
            replace(base, topology=TopologyConfig(clusters=3))
