"""Corpus generator, WordCount, and StringMatch application tests."""

import pytest

from repro import ComputeCacheMachine
from repro.apps import stringmatch, textgen, wordcount
from repro.params import small_test_machine


@pytest.fixture(scope="module")
def corpus():
    return textgen.zipf_corpus(seed=11, n_words=800, vocab_size=300)


class TestTextGen:
    def test_deterministic(self):
        a = textgen.zipf_corpus(1, 100, vocab_size=50)
        b = textgen.zipf_corpus(1, 100, vocab_size=50)
        assert a.words == b.words

    def test_seeds_differ(self):
        a = textgen.zipf_corpus(1, 100, vocab_size=50)
        b = textgen.zipf_corpus(2, 100, vocab_size=50)
        assert a.words != b.words

    def test_zipf_skew(self, corpus):
        """The most frequent word should dominate (Zipf head)."""
        counts = textgen.reference_wordcount(corpus)
        top = max(counts.values())
        assert top > len(corpus.words) / 20

    def test_vocabulary_covers_words(self, corpus):
        assert corpus.unique_words() <= set(corpus.vocabulary)

    def test_word_shape(self, corpus):
        for word in corpus.vocabulary[:50]:
            assert 3 <= len(word) <= 11
            assert word.isalpha() and word.islower()


class TestWordCount:
    @pytest.fixture(scope="class")
    def results(self, corpus):
        cfg = wordcount.WordCountConfig(n_bins=64, bin_capacity=16,
                                        dict_capacity=512)
        base = wordcount.run_wordcount(
            corpus, "baseline", ComputeCacheMachine(small_test_machine()), cfg)
        cc = wordcount.run_wordcount(
            corpus, "cc", ComputeCacheMachine(small_test_machine()), cfg)
        return base, cc

    def test_baseline_counts_exact(self, corpus, results):
        assert results[0].output == textgen.reference_wordcount(corpus)

    def test_cc_counts_exact(self, corpus, results):
        assert results[1].output == textgen.reference_wordcount(corpus)

    def test_cc_reduces_instructions(self, results):
        """The paper's 87% instruction reduction (binary-search bookkeeping
        disappears); smaller dictionaries reduce less, but well over half."""
        base, cc = results
        assert cc.instructions < base.instructions * 0.5

    def test_cc_uses_search_instructions(self, results):
        assert results[1].stats["searches"] > 0

    def test_unknown_variant_rejected(self, corpus):
        with pytest.raises(ValueError):
            wordcount.run_wordcount(corpus, "gpu")

    def test_bin_index_alphabetic(self):
        assert wordcount._bin_index("aardvark", 676) == 0
        assert wordcount._bin_index("ab", 676) == 1


class TestStringMatch:
    @pytest.fixture(scope="class")
    def workload(self):
        return stringmatch.make_workload(seed=3, n_words=400, n_keys=4,
                                         vocab_size=150)

    @pytest.fixture(scope="class")
    def results(self, workload):
        base = stringmatch.run_stringmatch(
            workload, "baseline", ComputeCacheMachine(small_test_machine()))
        cc = stringmatch.run_stringmatch(
            workload, "cc", ComputeCacheMachine(small_test_machine()))
        return base, cc

    def test_encryption_is_injective_on_vocab(self, workload):
        vocab = workload.corpus.vocabulary
        encrypted = {stringmatch.encrypt_slot(w) for w in vocab}
        assert len(encrypted) == len(vocab)

    def test_matches_exact_both_variants(self, workload, results):
        ref = stringmatch.reference_matches(workload)
        assert sorted(results[0].output) == ref
        assert sorted(results[1].output) == ref

    def test_some_matches_exist(self, workload):
        """Keys are drawn from the vocabulary, so matches must occur."""
        assert stringmatch.reference_matches(workload)

    def test_cc_reduces_instructions(self, results):
        base, cc = results
        assert cc.instructions < base.instructions

    def test_unknown_variant_rejected(self, workload):
        with pytest.raises(ValueError):
            stringmatch.run_stringmatch(workload, "fpga")
