"""Property tests for the job-service scheduling and dedup contracts:
queue scheduling is a total order respecting priority-then-FIFO, and
dedup never coalesces jobs whose provenance (backend / code fingerprint
/ seeds) differs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import point_key
from repro.serve.jobs import Job, JobQueue, can_coalesce, schedule_key

priorities = st.integers(-3, 3)

BACKENDS = ("packed", "bitexact")
CODE_VERSIONS = ("fp-aaaa", "fp-bbbb")
SEED_CHOICES = (0, 1, 42)


def build_job(seq, priority=0, fn="selftest", value=0, seed=0,
              backend="packed", code_version="fp-aaaa"):
    """A job exactly as the service would mint it: content-hash key over
    (fn, kwargs, backend, code version) plus the provenance header."""
    kwargs = {"value": value, "seed": seed}
    return Job(
        id=f"job{seq}", fn=fn, kwargs=kwargs,
        key=point_key(fn, kwargs, backend, code_version),
        provenance={"backend": backend, "code_version": code_version,
                    "workload_seeds": {"workload": seed}},
        priority=priority, seq=seq,
    )


job_identities = st.tuples(
    st.sampled_from(("selftest", "sleep")),      # fn
    st.integers(0, 2),                           # value kwarg
    st.sampled_from(SEED_CHOICES),               # seed
    st.sampled_from(BACKENDS),                   # backend
    st.sampled_from(CODE_VERSIONS),              # code fingerprint
)


class TestSchedulingTotalOrder:
    @given(st.lists(priorities, min_size=1, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_pop_order_is_priority_then_fifo(self, prios):
        queue = JobQueue()
        jobs = [build_job(seq, priority=p) for seq, p in enumerate(prios)]
        for job in jobs:
            queue.push(job)
        popped = [queue.pop() for _ in jobs]
        assert queue.pop() is None
        # Total order: the pop sequence is exactly the jobs sorted by
        # (priority desc, submission seq asc), and a permutation of the
        # input (nothing lost, nothing duplicated).
        assert popped == sorted(jobs, key=schedule_key)
        assert sorted(job.seq for job in popped) == list(range(len(jobs)))
        for earlier, later in zip(popped, popped[1:]):
            assert (earlier.priority > later.priority
                    or (earlier.priority == later.priority
                        and earlier.seq < later.seq))

    @given(st.lists(priorities, min_size=2, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_order_is_strict_and_antisymmetric(self, prios):
        jobs = [build_job(seq, priority=p) for seq, p in enumerate(prios)]
        keys = [schedule_key(job) for job in jobs]
        assert len(set(keys)) == len(keys)  # no ties: seq breaks every one

    @given(st.lists(st.tuples(priorities, st.booleans()), min_size=1,
                    max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_interleaved_pops_always_take_the_scheduled_minimum(self, ops):
        queue = JobQueue()
        alive = []
        seq = 0
        for priority, do_pop in ops:
            if do_pop and alive:
                expected = min(alive, key=schedule_key)
                assert queue.pop() is expected
                alive.remove(expected)
            else:
                job = build_job(seq, priority=priority)
                seq += 1
                queue.push(job)
                alive.append(job)
        while alive:
            expected = min(alive, key=schedule_key)
            assert queue.pop() is expected
            alive.remove(expected)


class TestDedupProvenance:
    @given(job_identities, job_identities)
    @settings(max_examples=300, deadline=None)
    def test_coalesce_iff_identity_and_provenance_match(self, ident_a,
                                                        ident_b):
        a = build_job(0, fn=ident_a[0], value=ident_a[1], seed=ident_a[2],
                      backend=ident_a[3], code_version=ident_a[4])
        b = build_job(1, fn=ident_b[0], value=ident_b[1], seed=ident_b[2],
                      backend=ident_b[3], code_version=ident_b[4])
        if ident_a == ident_b:
            assert can_coalesce(a, b)
        else:
            # Any difference in the point identity or the provenance
            # header (backend, code fingerprint, seeds) forbids dedup.
            assert not can_coalesce(a, b)

    @given(job_identities)
    @settings(max_examples=100, deadline=None)
    def test_same_key_different_provenance_never_coalesces(self, ident):
        # Even with identical content-hash keys (forced here), a
        # provenance header mismatch must block coalescing — provenance
        # is checked independently of the key.
        a = build_job(0, fn=ident[0], value=ident[1], seed=ident[2],
                      backend=ident[3], code_version=ident[4])
        b = build_job(1, fn=ident[0], value=ident[1], seed=ident[2],
                      backend=ident[3], code_version=ident[4])
        b.provenance = dict(b.provenance,
                            workload_seeds={"workload": ident[2] + 1})
        assert a.key == b.key
        assert not can_coalesce(a, b)

    @given(job_identities)
    @settings(max_examples=60, deadline=None)
    def test_priority_never_affects_dedup(self, ident):
        a = build_job(0, fn=ident[0], value=ident[1], seed=ident[2],
                      backend=ident[3], code_version=ident[4])
        b = build_job(1, fn=ident[0], value=ident[1], seed=ident[2],
                      backend=ident[3], code_version=ident[4])
        b.priority = a.priority + 3
        assert can_coalesce(a, b)
