"""Toolchain integration: compiler plans executed via traces, assembler
output fed back through the frontend, sweep helpers, and determinism."""

import numpy as np
import pytest

from repro import ComputeCacheMachine
from repro.asm import format_instruction
from repro.bench.sweeps import noc_distance_sweep, wordline_activation_sweep
from repro.compiler import ArrayRef, VectorCompiler, compile_and_run
from repro.core.isa import Opcode
from repro.params import small_test_machine
from repro.trace import run_trace


class TestCompilerAllOpcodes:
    @pytest.mark.parametrize("opcode,expected", [
        (Opcode.AND, lambda a, b: (a & b)),
        (Opcode.OR, lambda a, b: (a | b)),
        (Opcode.XOR, lambda a, b: (a ^ b)),
    ])
    def test_binary_ops_compile_and_run(self, make_bytes, opcode, expected):
        m = ComputeCacheMachine(small_test_machine())
        da, db = make_bytes(512), make_bytes(512)
        plan = compile_and_run(m, opcode, {"a": da, "b": db})
        na, nb = np.frombuffer(da, np.uint8), np.frombuffer(db, np.uint8)
        assert m.peek(plan.arrays["dest"].addr, 512) == expected(na, nb).tobytes()

    def test_copy_compiles(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        data = make_bytes(512)
        plan = compile_and_run(m, Opcode.COPY, {"a": data})
        assert m.peek(plan.arrays["dest"].addr, 512) == data

    def test_buz_compiles(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        plan = compile_and_run(m, Opcode.BUZ, {"a": make_bytes(512)})
        assert m.peek(plan.arrays["a"].addr, 512) == bytes(512)

    def test_cmp_compiles_with_register_results(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        data = make_bytes(1024)
        compiler = VectorCompiler(m.config)
        refs = compiler.place_arrays(m.arena, ["a", "b"], 1024)
        m.load(refs["a"].addr, data)
        m.load(refs["b"].addr, data)
        plan = compiler.compile_elementwise(Opcode.CMP, refs["a"], refs["b"], None)
        results = plan.run(m)
        assert len(results) == 2  # two 512 B tiles
        for res in results:
            assert res.result == 2**64 - 1

    def test_unsupported_opcode_rejected(self):
        compiler = VectorCompiler(small_test_machine())
        with pytest.raises(Exception):
            compiler.compile_elementwise(
                Opcode.SEARCH, ArrayRef("a", 0, 64), ArrayRef("b", 4096, 64),
                None,
            )


class TestPlanToTraceRoundTrip:
    def test_compiled_plan_replays_as_trace(self, make_bytes):
        """Disassemble a compiled plan, splice it into a trace, replay it
        on a fresh machine: same result."""
        m1 = ComputeCacheMachine(small_test_machine())
        da, db = make_bytes(512), make_bytes(512)
        plan = compile_and_run(m1, Opcode.XOR, {"a": da, "b": db})
        direct = m1.peek(plan.arrays["dest"].addr, 512)

        a = plan.arrays["a"].addr
        b = plan.arrays["b"].addr
        dest = plan.arrays["dest"].addr
        trace = "\n".join(
            [f"init {a:#x}, bytes:{da.hex()}",
             f"init {b:#x}, bytes:{db.hex()}"]
            + [format_instruction(i) for i in plan.instructions]
        )
        m2 = ComputeCacheMachine(small_test_machine())
        result = run_trace(trace, m2)
        assert result.cc_instructions == plan.tile_count
        assert m2.peek(dest, 512) == direct

    def test_trace_results_expose_masks(self, make_bytes):
        key = make_bytes(64)
        data = key + bytes(192)
        trace = "\n".join([
            f"init 0x0, bytes:{data.hex()}",
            f"init 0x1000, bytes:{key.hex()}",
            "cc_search 0x0, 0x1000, 256",
        ])
        m = ComputeCacheMachine(small_test_machine())
        result = run_trace(trace, m)
        assert result.cc_results[0].result & 1
        # blocks 1-3 are zeros: no match against a random key
        assert result.cc_results[0].result == 1

    def test_trace_determinism(self, make_bytes):
        data = make_bytes(256)
        trace = "\n".join([
            f"init 0x0, bytes:{data.hex()}",
            "cc_copy 0x0, 0x1000, 256",
            "load 0x1000, 64",
            "fence",
        ])
        runs = []
        for _ in range(2):
            m = ComputeCacheMachine(small_test_machine())
            res = run_trace(trace, m)
            runs.append((res.cycles, res.instructions, res.dynamic_nj,
                         m.peek(0x1000, 256)))
        assert runs[0] == runs[1]
        assert runs[0][3] == data


class TestSweepHelpers:
    def test_wordline_sweep_rows(self):
        rows = wordline_activation_sweep()
        activations = [r["rows_activated"] for r in rows]
        assert activations == [2, 4, 8, 16, 32, 64, 65]
        assert all(r["algebra_exact"] for r in rows[:-1])
        assert rows[-1]["rejected"]

    def test_noc_sweep_shape(self):
        rows = noc_distance_sweep()
        assert rows[0]["hops"] == 0
        assert rows[0]["block_energy_pj"] == 0.0
        assert len(rows) == 5  # 8-stop ring: distances 0..4


class TestListingFormat:
    def test_listing_contains_every_tile(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        plan = compile_and_run(m, Opcode.AND,
                               {"a": make_bytes(8192), "b": make_bytes(8192)})
        listing = plan.listing()
        # One mention per tile plus the header comment.
        assert listing.count("cc_and") == plan.tile_count + 1
        assert listing.splitlines()[0].startswith("; cc_and over")
        # Each listed line re-parses to the corresponding instruction.
        from repro.asm import parse

        body = [ln for ln in listing.splitlines() if not ln.startswith(";")]
        assert [parse(ln) for ln in body] == plan.instructions
