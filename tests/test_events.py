"""Event-tracing subsystem tests (repro.events).

Covers the ring-buffer tracer itself, the cycle-attribution invariant
(phase spans sum to machine cycles), agreement between the event profiler
and ``collect_stats``, the Chrome-trace exporter, the ``repro profile``
CLI, and the near-zero cost of disabled tracing.
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.events import (
    CC_PHASES,
    MACHINE_PHASES,
    EventTracer,
    build_profile,
    chrome_trace,
    format_profile,
    profile_machine,
    profile_trace,
    write_chrome_trace,
)
from repro.params import small_test_machine
from repro.stats import collect_stats
from repro.trace import run_trace

PROFILE_TRACE = """
init 0x0000, repeat:0xa5*4096
init 0x1000, repeat:0x0f*4096
init 0x2000, zeros:4096
init 0x4000, bytes:deadbeefcafef00d
load  0x4000, 8
load  0x4000, 8, dependent
simd_load 0x0000, 32
scalar
branch
store 0x4040, bytes:0011223344556677
simd_store 0x4080, repeat:0x5a*64
cc_and 0x0000, 0x1000, 0x2000, 4096
cc_cmp 0x0000, 0x1000, 512
fence
"""


@pytest.fixture
def traced_machine(small_config):
    return ComputeCacheMachine(small_config, trace_events=True)


class TestEventTracer:
    def test_disabled_by_default(self, machine):
        assert machine.tracer is None
        assert machine.hierarchy.tracer is None
        assert machine.controllers[0].tracer is None
        assert machine.cores[0].tracer is None

    def test_enabled_machine_shares_one_tracer(self, traced_machine):
        m = traced_machine
        assert m.tracer is not None
        assert m.controllers[0].tracer is m.tracer
        assert m.cores[0].tracer is m.tracer
        assert m.hierarchy.l1[0].tracer is m.tracer
        assert m.hierarchy.l3[0].tracer is m.tracer
        assert m.hierarchy.directory[0].tracer is m.tracer

    def test_emit_and_sequence(self):
        tracer = EventTracer(capacity=16)
        tracer.emit("cache.lookup", level="L1-D", outcome="hit")
        tracer.emit("cache.lookup", level="L1-D", outcome="miss")
        events = tracer.snapshot()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].outcome == "hit" and events[1].outcome == "miss"
        assert tracer.dropped == 0

    def test_ring_overflow_counts_dropped(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit("cache.lookup", addr=i)
        assert len(tracer) == 4
        assert tracer.total_emitted == 10
        assert tracer.dropped == 6
        assert [e.addr for e in tracer.snapshot()] == [6, 7, 8, 9]

    def test_disabled_tracer_is_noop(self):
        tracer = EventTracer(capacity=4, enabled=False)
        tracer.emit("cache.lookup")
        assert len(tracer) == 0 and tracer.total_emitted == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_by_kind_and_clear(self):
        tracer = EventTracer(capacity=8)
        tracer.emit("cache.lookup")
        tracer.emit("dir.grant")
        assert len(tracer.by_kind("dir.grant")) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_config_capacity_validated(self):
        from repro.errors import ConfigError
        from repro.params import MachineConfig

        with pytest.raises(ConfigError):
            MachineConfig(event_buffer_capacity=0)


class TestAttributionInvariant:
    def test_machine_phases_sum_to_cycles(self, small_config):
        m = ComputeCacheMachine(small_config, trace_events=True)
        result = run_trace(PROFILE_TRACE, m)
        profile = profile_machine(m, total_cycles=result.cycles)
        assert profile.validate(result.cycles)
        assert math.isclose(profile.attributed_cycles, result.cycles,
                            rel_tol=1e-9, abs_tol=1e-6)
        # every phase key is a known machine phase
        assert set(profile.machine_phases) <= set(MACHINE_PHASES)

    def test_cc_attr_sums_to_instruction_cycles(self, small_config):
        m = ComputeCacheMachine(small_config, trace_events=True)
        run_trace(PROFILE_TRACE, m)
        profile = profile_machine(m)
        assert profile.cc_instructions, "trace contains CC instructions"
        assert set(profile.cc_phases) <= set(CC_PHASES)
        for row in profile.cc_instructions:
            assert math.isclose(sum(row.phases.values()), row.cycles,
                                rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(sum(profile.cc_phases.values()),
                            sum(r.cycles for r in profile.cc_instructions),
                            rel_tol=1e-9, abs_tol=1e-6)

    def test_truncated_stream_refuses_to_validate(self, small_config):
        from dataclasses import replace

        config = replace(small_config, event_buffer_capacity=8)
        m = ComputeCacheMachine(config, trace_events=True)
        result = run_trace(PROFILE_TRACE, m)
        assert m.tracer.dropped > 0
        profile = profile_machine(m, total_cycles=result.cycles)
        assert not profile.validate(result.cycles)

    def test_profile_trace_helper(self):
        profile, result, machine = profile_trace(
            PROFILE_TRACE, machine=ComputeCacheMachine(
                small_test_machine(), trace_events=True
            ),
        )
        assert profile.validate(result.cycles)
        assert machine.tracer is not None

    def test_profile_machine_requires_tracer(self, machine):
        with pytest.raises(ValueError):
            profile_machine(machine)


class TestProfilerStatsAgreement:
    """The event-derived profile and collect_stats never disagree."""

    def test_counters_match(self, small_config):
        m = ComputeCacheMachine(small_config, trace_events=True)
        run_trace(PROFILE_TRACE, m)
        profile = profile_machine(m)
        snap = collect_stats(m)
        assert profile.block_op_outcomes.get("in-place", 0) == snap.cc_inplace_ops
        assert profile.block_op_outcomes.get("near-place", 0) == snap.cc_nearplace_ops
        assert profile.block_op_outcomes.get("risc-fallback", 0) == snap.cc_risc_ops
        assert profile.pin_retries == snap.cc_pin_retries
        assert profile.key_replications == snap.cc_key_replications
        assert profile.fallback_reasons == snap.cc_fallback_reasons
        assert profile.level_compute_cycles == snap.cc_level_compute_cycles
        for level, cycles in profile.level_compute_cycles.items():
            assert snap.levels[level].cc_compute_cycles == cycles

    def test_cache_event_counts_match_stats(self, small_config):
        m = ComputeCacheMachine(small_config, trace_events=True)
        run_trace(PROFILE_TRACE, m)
        profile = profile_machine(m)
        snap = collect_stats(m)
        # fills and writebacks are one event per counted occurrence
        for prof_level, stats_level in (("L1-D", "L1"), ("L2", "L2"),
                                        ("L3-slice", "L3")):
            counts = profile.cache_counts.get(prof_level, {})
            level = snap.levels[stats_level]
            assert counts.get("fills", 0) == level.fills
            assert counts.get("writebacks", 0) == level.writebacks
            assert counts.get("htree_transfers", 0) == level.htree_transfers
            assert counts.get("htree_commands", 0) == level.htree_commands

    def test_format_outputs_render(self, small_config):
        m = ComputeCacheMachine(small_config, trace_events=True)
        result = run_trace(PROFILE_TRACE, m)
        profile = profile_machine(m, total_cycles=result.cycles)
        text = format_profile(profile)
        assert "[attribution OK]" in text
        assert "=== CC block operations ===" in text
        from repro.stats import format_stats
        assert "compute cycles" in format_stats(collect_stats(m))


class TestChromeTrace:
    def test_export_structure(self, small_config, tmp_path):
        m = ComputeCacheMachine(small_config, trace_events=True)
        run_trace(PROFILE_TRACE, m)
        doc = chrome_trace(m.tracer.snapshot())
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert slices and meta
        for e in slices:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["name"]
        # issue slots and CC occupancy both present
        names = {e["name"] for e in slices}
        assert "issue" in {n.split(":", 1)[0] for n in names}
        out = tmp_path / "trace.json"
        write_chrome_trace(m.tracer.snapshot(), str(out))
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"] == json.loads(json.dumps(events))

    def test_empty_stream_exports(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []


class TestProfileCli:
    def test_profile_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "chrome.json"
        rc = main(["profile", "examples/profile_demo.trace",
                   "--machine", "small", "--chrome-trace", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "[attribution OK]" in text
        assert "Per-instruction CC attribution" in text
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_profile_both_backends_agree(self, capsys):
        from repro.cli import main

        outputs = []
        for backend in ("bitexact", "packed"):
            rc = main(["profile", "examples/profile_demo.trace",
                       "--machine", "small", "--backend", backend])
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestDisabledOverhead:
    def test_tracing_disabled_overhead_small(self, small_config):
        """Tracing off must stay within noise of the instrumentation's
        architectural floor on a 16 KB xor.

        With ``trace_events=False`` every component holds ``tracer=None``,
        so the hot paths pay exactly one ``is not None`` check per hook -
        the <2% overhead target is architectural.  At wall-clock level we
        compare against the next-cheapest measurable variant (a tracer
        attached but ``enabled=False``, which additionally pays the
        ``emit()`` call): disabled must not be slower than that, modulo
        generous CI scheduling noise."""
        size = 16 * 1024

        def run_once(trace_events, suppress=False):
            m = ComputeCacheMachine(small_config, trace_events=trace_events)
            if suppress:
                m.tracer.enabled = False
            a, b, c = m.arena.alloc_colocated(size, 3)
            m.load(a, b"\xa5" * size)
            m.load(b, b"\x0f" * size)
            start = time.perf_counter()
            m.cc(cc_ops.cc_xor(a, b, c, size))
            return time.perf_counter() - start

        run_once(False)  # warm caches before timing
        disabled, suppressed = [], []
        for _ in range(5):  # interleave A/B to cancel drift
            disabled.append(run_once(False))
            suppressed.append(run_once(True, suppress=True))
        median_disabled = sorted(disabled)[2]
        median_suppressed = sorted(suppressed)[2]
        assert median_disabled <= median_suppressed * 1.25, (
            f"tracing-disabled run ({median_disabled * 1e3:.2f} ms) slower "
            f"than suppressed-tracer run ({median_suppressed * 1e3:.2f} ms)"
        )

    def test_no_events_emitted_when_disabled(self, machine):
        a, b, c = machine.arena.alloc_colocated(4096, 3)
        machine.load(a, b"\xa5" * 4096)
        machine.load(b, b"\x0f" * 4096)
        machine.cc(cc_ops.cc_xor(a, b, c, 4096))
        assert machine.tracer is None  # nothing attached anywhere
