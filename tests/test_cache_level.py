"""CacheLevel tests: fills, evictions, pinning, energy charging."""

import pytest

from repro.cache.block import MESIState
from repro.cache.cache import CacheLevel
from repro.energy.accounting import EnergyLedger
from repro.errors import AddressError, CoherenceError
from repro.params import CacheLevelConfig


@pytest.fixture
def level():
    cfg = CacheLevelConfig(name="L1-D", size=4 * 1024, ways=4, banks=2,
                           bps_per_bank=2, hit_latency=5)
    return CacheLevel(cfg, EnergyLedger())


class TestFillReadWrite:
    def test_fill_then_read(self, level, make_bytes):
        data = make_bytes(64)
        assert level.fill(0x1000, data, MESIState.EXCLUSIVE) is None
        assert level.read_block(0x1000) == data
        assert level.state_of(0x1000) is MESIState.EXCLUSIVE

    def test_write_marks_modified(self, level, make_bytes):
        level.fill(0x1000, bytes(64), MESIState.EXCLUSIVE)
        level.write_block(0x1000, make_bytes(64))
        assert level.state_of(0x1000) is MESIState.MODIFIED

    def test_unaligned_rejected(self, level):
        with pytest.raises(AddressError):
            level.read_block(0x1001)

    def test_absent_read_rejected(self, level):
        with pytest.raises(CoherenceError):
            level.read_block(0x1000)

    def test_double_fill_rejected(self, level):
        level.fill(0x1000, bytes(64), MESIState.SHARED)
        with pytest.raises(CoherenceError):
            level.fill(0x1000, bytes(64), MESIState.SHARED)

    def test_peek_free_of_charge(self, level, make_bytes):
        data = make_bytes(64)
        level.fill(0x1000, data, MESIState.EXCLUSIVE)
        before = level.ledger.total()
        reads_before = level.stats.reads
        assert level.peek_block(0x1000) == data
        assert level.ledger.total() == before
        assert level.stats.reads == reads_before


class TestEviction:
    def _fill_set(self, level, base, n, state=MESIState.EXCLUSIVE):
        """Fill n conflicting blocks (same set)."""
        cfg = level.config
        stride = cfg.sets * cfg.block_size
        addrs = [base + i * stride for i in range(n)]
        evictions = [level.fill(a, a.to_bytes(8, "little") * 8, state) for a in addrs]
        return addrs, evictions

    def test_eviction_returns_victim(self, level):
        ways = level.config.ways
        addrs, evictions = self._fill_set(level, 0x0, ways + 1)
        assert all(e is None for e in evictions[:ways])
        victim = evictions[ways]
        assert victim is not None
        assert victim.addr == addrs[0]  # LRU
        assert not victim.dirty

    def test_dirty_eviction_carries_data(self, level, make_bytes):
        ways = level.config.ways
        addrs, _ = self._fill_set(level, 0x0, ways)
        dirty_data = make_bytes(64)
        level.write_block(addrs[1], dirty_data)  # way 1 is dirty and MRU
        # Fill more: victims evict in LRU order (0, 2, 3...), then 1.
        stride = level.config.sets * level.config.block_size
        ev = None
        for i in range(ways):
            ev = level.fill(0x40000 + i * stride, bytes(64), MESIState.SHARED)
            if ev and ev.dirty:
                break
        assert ev is not None and ev.dirty
        assert ev.addr == addrs[1]
        assert ev.data == dirty_data

    def test_invalidate_returns_data(self, level, make_bytes):
        data = make_bytes(64)
        level.fill(0x2000, data, MESIState.MODIFIED)
        result = level.invalidate(0x2000)
        assert result == (data, True)
        assert not level.contains(0x2000)
        assert level.invalidate(0x2000) is None


class TestPinning:
    def test_pin_unpin(self, level):
        level.fill(0x1000, bytes(64), MESIState.EXCLUSIVE)
        level.pin(0x1000, owner=1)
        assert level.is_pinned(0x1000)
        level.unpin(0x1000)
        assert not level.is_pinned(0x1000)

    def test_pin_absent_rejected(self, level):
        with pytest.raises(CoherenceError):
            level.pin(0x1000, owner=1)

    def test_unpin_absent_is_noop(self, level):
        level.unpin(0x1000)  # must not raise


class TestEnergyCharging:
    def test_read_charges_access_and_ic(self, level, make_bytes):
        level.fill(0x1000, make_bytes(64), MESIState.EXCLUSIVE)
        level.ledger.reset()
        level.read_block(0x1000)
        from repro.energy.tables import read_energy

        assert level.ledger.total() == pytest.approx(read_energy("L1-D"))
        assert level.ledger.cache_ic() > 0
        assert level.ledger.cache_access() > 0

    def test_uncharged_read(self, level, make_bytes):
        level.fill(0x1000, make_bytes(64), MESIState.EXCLUSIVE)
        level.ledger.reset()
        level.read_block(0x1000, charge=False)
        assert level.ledger.total() == 0.0

    def test_locate_and_resident_addresses(self, level, make_bytes):
        level.fill(0x1000, make_bytes(64), MESIState.EXCLUSIVE)
        sub, row = level.locate(0x1000)
        assert sub.read_block(row) == level.peek_block(0x1000)
        assert level.resident_addresses() == [0x1000]
