"""Decoder and sense-amplifier periphery tests."""

import numpy as np
import pytest

from repro.errors import AddressError, ReproError
from repro.sram import DualRowDecoder, SenseAmpColumn, SenseMode


class TestDualRowDecoder:
    def test_single_decode(self):
        dec = DualRowDecoder(rows=8)
        assert dec.decode(3) == (3,)
        assert dec.decode_count == 1
        assert dec.dual_decode_count == 0

    def test_dual_decode(self):
        dec = DualRowDecoder(rows=8)
        assert dec.decode(1, 6) == (1, 6)
        assert dec.dual_decode_count == 1

    def test_identical_rows_degenerate_to_single(self):
        """Both decoders picking one row = one word-line driven once -
        the cc_cmp(a, a) / cc_and(a, a, c) self-operand case."""
        dec = DualRowDecoder(rows=8)
        assert dec.decode(2, 2) == (2,)
        assert dec.dual_decode_count == 0

    def test_out_of_range(self):
        dec = DualRowDecoder(rows=8)
        with pytest.raises(AddressError):
            dec.decode(8)
        with pytest.raises(AddressError):
            dec.decode(0, 9)


class TestSenseAmps:
    def _bl(self, pattern):
        return np.array([c == "1" for c in pattern], dtype=bool)

    def test_differential_read(self):
        sa = SenseAmpColumn(4)
        out = sa.sense_differential(self._bl("1010"), self._bl("0101"))
        assert (out == self._bl("1010")).all()

    def test_mode_enforced(self):
        sa = SenseAmpColumn(4)
        with pytest.raises(ReproError):
            sa.sense_single_ended(self._bl("0000"), self._bl("0000"))
        sa.configure(SenseMode.SINGLE_ENDED)
        with pytest.raises(ReproError):
            sa.sense_differential(self._bl("0000"), self._bl("0000"))

    def test_reconfiguration_counted(self):
        sa = SenseAmpColumn(4)
        sa.configure(SenseMode.SINGLE_ENDED)
        sa.configure(SenseMode.SINGLE_ENDED)  # no-op
        sa.configure(SenseMode.DIFFERENTIAL)
        assert sa.reconfigurations == 2

    def test_single_ended_returns_both_rails(self):
        sa = SenseAmpColumn(4)
        sa.configure(SenseMode.SINGLE_ENDED)
        bl, blb = sa.sense_single_ended(self._bl("1100"), self._bl("0011"))
        assert (bl == self._bl("1100")).all()
        assert (blb == self._bl("0011")).all()

    def test_copy_feedback_path(self):
        """Figure 4: last sensed value is what drives the write-back."""
        sa = SenseAmpColumn(4)
        sa.sense_differential(self._bl("1001"), self._bl("0110"))
        assert (sa.drive_back() == self._bl("1001")).all()

    def test_reset_latch_zeroes(self):
        sa = SenseAmpColumn(4)
        sa.sense_differential(self._bl("1111"), self._bl("0000"))
        sa.reset_latch()
        assert not sa.drive_back().any()

    def test_empty_latch_rejected(self):
        sa = SenseAmpColumn(4)
        with pytest.raises(ReproError):
            sa.drive_back()
