"""STREAM bandwidth suite: numpy-exact results on both backends, the
analytic traffic model, and the sweep's identity checks."""

import pytest

from repro.apps.streambw import (
    KERNELS,
    STREAM_KERNELS,
    run_streambw,
    stream_traffic_bytes,
)
from repro.bench.streambw import (
    StreamBWConfig,
    backend_equivalence_check,
    flat_equivalence_check,
    scalar_roofline,
)
from repro.errors import AddressError
from repro.machine import ComputeCacheMachine
from repro.params import BACKENDS, multi_cluster

WORDS = 256  # uint32 elements per array per core (16 blocks)


def _machine(clusters=2, cores_per_cluster=2, **kwargs):
    return ComputeCacheMachine(multi_cluster(clusters, cores_per_cluster),
                               **kwargs)


class TestBitExactness:
    """Every kernel, both variants, both backends — element-exact vs
    numpy (``run_streambw`` raises on any mismatch) and bit-identical
    numbers across backends."""

    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    @pytest.mark.parametrize("variant", ["scalar", "cc"])
    def test_backends_verified_and_bit_identical(self, kernel, variant):
        runs = {}
        for backend in BACKENDS:
            res = run_streambw(kernel, _machine(backend=backend),
                               variant=variant, words=WORDS,
                               placement="hub")
            assert res.stats["verified"]
            assert res.stats["bytes_per_cycle"] > 0
            runs[backend] = (res.cycles, res.instructions,
                             dict(res.energy.pj))
        values = list(runs.values())
        assert all(v == values[0] for v in values[1:]), runs

    @pytest.mark.parametrize("kernel", ["gather", "scatter"])
    def test_irregular_kernels_scalar_exact(self, kernel):
        res = run_streambw(kernel, _machine(), variant="scalar",
                           words=WORDS, placement="local")
        assert res.stats["verified"]
        assert res.cycles > 0

    def test_local_placement_also_exact(self):
        res = run_streambw("triad", _machine(), variant="cc",
                           words=WORDS, placement="local")
        assert res.stats["verified"]


class TestTrafficModel:
    """Measured bytes moved == the analytic per-kernel traffic model."""

    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    def test_l1_fill_bytes_match_model(self, kernel):
        machine = _machine(trace_events=True)
        res = run_streambw(kernel, machine, variant="scalar", words=WORDS,
                           placement="hub")
        expected = stream_traffic_bytes(kernel, WORDS) * machine.config.cores
        assert res.stats["l1_fill_bytes"] == expected
        assert res.stats["bytes"] == expected

    def test_factor_table(self):
        assert stream_traffic_bytes("copy", WORDS) == 2 * 4 * WORDS
        assert stream_traffic_bytes("scale", WORDS) == 2 * 4 * WORDS
        assert stream_traffic_bytes("add", WORDS) == 3 * 4 * WORDS
        assert stream_traffic_bytes("triad", WORDS) == 3 * 4 * WORDS
        with pytest.raises(ValueError):
            stream_traffic_bytes("daxpy", WORDS)

    def test_hub_placement_crosses_clusters(self):
        """Remote homes produce topo.hop traffic on a 2-cluster machine;
        a 1-cluster machine produces none (event-stream compatibility)."""
        multi = _machine(trace_events=True)
        res = run_streambw("copy", multi, variant="scalar", words=WORDS,
                           placement="hub")
        assert res.stats["topo_hops"] > 0
        assert multi.tracer.by_kind("topo.hop")

        flat = _machine(clusters=1, trace_events=True)
        res = run_streambw("copy", flat, variant="scalar", words=WORDS,
                           placement="hub")
        assert res.stats["topo_hops"] == 0
        assert not flat.tracer.by_kind("topo.hop")


class TestRooflineAndChecks:
    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    @pytest.mark.parametrize("clusters", [1, 2])
    def test_measured_scalar_below_roofline(self, kernel, clusters):
        config = multi_cluster(clusters, 2)
        res = run_streambw(kernel, ComputeCacheMachine(config),
                           variant="scalar", words=WORDS, placement="hub")
        assert (res.stats["bytes_per_cycle"]
                <= scalar_roofline(config, kernel, "hub"))

    def test_flat_equivalence(self):
        check = flat_equivalence_check(StreamBWConfig(check_words=128))
        assert check["identical"], check

    def test_backend_equivalence(self):
        check = backend_equivalence_check(
            StreamBWConfig(clusters=(2,), check_words=128))
        assert check["identical"], check


class TestValidation:
    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            run_streambw("daxpy", _machine())

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            run_streambw("copy", _machine(), variant="vector")

    @pytest.mark.parametrize("kernel", ["gather", "scatter"])
    def test_irregular_kernels_have_no_cc_lowering(self, kernel):
        assert kernel in KERNELS
        with pytest.raises(ValueError):
            run_streambw(kernel, _machine(), variant="cc")

    def test_words_must_be_block_multiple(self):
        with pytest.raises(AddressError):
            run_streambw("copy", _machine(), words=10)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            run_streambw("copy", _machine(), placement="spread")
