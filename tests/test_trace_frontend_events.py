"""Trace-frontend round trips with event tracing, plus data-spec fixes.

Round-trips a trace containing every trace event kind (init / load /
store / simd_* / scalar / branch / fence / every cc_* family) through
both execution backends and asserts identical :class:`TraceResult`s *and*
bit-identical event streams.  Also pins the fixed ``data-spec`` grammar
edge cases: negative counts and odd-length hex are parse errors tagged
with their trace line number, not silent empty payloads.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import ComputeCacheMachine
from repro.errors import ISAError
from repro.params import BACKENDS, small_test_machine
from repro.trace import TraceReader, _parse_data_spec, run_trace

DEMO_TRACE = (Path(__file__).parent.parent
              / "examples" / "profile_demo.trace").read_text()


def _traced_run(backend: str):
    m = ComputeCacheMachine(small_test_machine(), trace_events=True,
                            backend=backend)
    result = run_trace(DEMO_TRACE, m)
    return m, result


class TestRoundTrip:
    def test_demo_trace_covers_every_event_kind(self):
        reader = TraceReader().feed(DEMO_TRACE)
        kinds = {i.kind.name.lower() for i in reader.program}
        assert kinds == {"load", "simd_load", "store", "simd_store",
                         "scalar_op", "branch", "fence", "cc"}
        assert reader.inits, "backdoor inits present"
        mnemonics = {i.cc.opcode.value for i in reader.program
                     if i.cc is not None}
        assert mnemonics == {"cc_and", "cc_or", "cc_xor", "cc_not",
                             "cc_copy", "cc_buz", "cc_cmp", "cc_search",
                             "cc_clmul"}

    def test_backends_identical_results_and_event_streams(self):
        runs = {be: _traced_run(be) for be in BACKENDS}
        (m_bit, r_bit), (m_packed, r_packed) = runs["bitexact"], runs["packed"]
        # Identical architectural outcome...
        assert r_bit == r_packed
        # ...and bit-identical event streams (simulated cycles only, no
        # wall-clock): the tracer is backend-invariant by construction.
        ev_bit, ev_packed = m_bit.tracer.snapshot(), m_packed.tracer.snapshot()
        assert len(ev_bit) == len(ev_packed)
        assert ev_bit == ev_packed
        assert m_bit.tracer.dropped == m_packed.tracer.dropped == 0

    def test_traced_run_matches_untraced_run(self):
        """Attaching the tracer must not change simulated behaviour."""
        _, traced = _traced_run("packed")
        untraced = run_trace(
            DEMO_TRACE, ComputeCacheMachine(small_test_machine())
        )
        assert traced == untraced

    def test_tracer_sees_all_instrumented_layers(self):
        m, _ = _traced_run("packed")
        kinds = {e.kind for e in m.tracer}
        assert {"core.phase", "cc.timeline", "cc.instruction", "cc.attr",
                "cc.dispatch", "cc.block_op", "cc.fetch", "cc.key_replicate",
                "subarray.op", "cache.lookup", "cache.read", "cache.write",
                "cache.fill", "htree.transfer", "dir.grant"} <= kinds

    def test_nearplace_events_on_forced_path(self, machine, make_bytes):
        from repro import cc_ops

        m = ComputeCacheMachine(small_test_machine(), trace_events=True)
        a, b, c = m.arena.alloc_colocated(512, 3)
        m.load(a, make_bytes(512))
        m.load(b, make_bytes(512))
        m.cc(cc_ops.cc_and(a, b, c, 512), force_nearplace=True)
        kinds = {e.kind for e in m.tracer}
        assert "nearplace.op" in kinds
        ops = m.tracer.by_kind("cc.block_op")
        assert ops and all(e.outcome == "near-place" and e.reason == "forced"
                           for e in ops)


class TestDataSpecEdgeCases:
    @pytest.mark.parametrize("spec,message", [
        ("zeros:-1", "negative byte count"),
        ("repeat:0xff*-3", "negative byte count"),
        ("bytes:abc", "even number"),
        ("bytes:zz", "even number"),
        ("repeat:0xff", "repeat spec needs"),
        ("blob:00", "unknown data spec"),
    ])
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ISAError, match=message):
            _parse_data_spec(spec)

    @pytest.mark.parametrize("spec", ["zeros:-1", "repeat:0xff*-3",
                                      "bytes:abc"])
    def test_errors_carry_trace_line_number(self, spec):
        trace = f"scalar\ninit 0x0, {spec}\n"
        with pytest.raises(ISAError, match="trace line 2"):
            run_trace(trace, ComputeCacheMachine(small_test_machine()))

    def test_zero_counts_are_valid_empty_payloads(self):
        assert _parse_data_spec("zeros:0") == b""
        assert _parse_data_spec("repeat:0xff*0") == b""

    def test_counts_accept_hex(self):
        assert _parse_data_spec("zeros:0x10") == bytes(16)
        assert _parse_data_spec("repeat:0xa5*0x4") == b"\xa5" * 4
