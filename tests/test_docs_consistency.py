"""Documentation-consistency checks (`repro.docscheck`).

The heavyweight half of the docscheck — executing every runnable fenced
example, including full benchmark CLI runs — lives in the dedicated CI
job (`python -m repro docscheck`). This tier-1 module pins the cheap
structural guarantees: the generated ISA table cannot drift from the
implementation, internal cross-links resolve, the marker/fence parser
behaves, and the fast examples actually execute.
"""

from pathlib import Path

import pytest

from repro.api import generate_isa_table, run_docscheck
from repro.core.isa import ARITH_ELEM_BITS, Opcode
from repro.docscheck import (
    ISA_BEGIN,
    ISA_END,
    Example,
    check_crosslinks,
    check_isa_table,
    extract_examples,
    run_example,
)

REPO = Path(__file__).resolve().parent.parent


class TestGeneratedIsaTable:
    def test_generator_covers_every_opcode(self):
        table = generate_isa_table()
        for op in Opcode:
            base = f"cc_{op.name.lower()}"
            assert base in table, f"{base} missing from the generated table"
        # The arithmetic tier advertises its width suffixes.
        for name in ("cc_addW", "cc_mulW", "cc_reduceW"):
            assert name in table
        assert "8/16/32" in table  # ARITH_ELEM_BITS surfaced in Limits
        assert set(ARITH_ELEM_BITS) == {8, 16, 32}

    def test_committed_table_matches_generator(self):
        assert check_isa_table(REPO) == []

    def test_committed_table_sits_between_markers(self):
        text = (REPO / "docs" / "isa.md").read_text(encoding="utf-8")
        begin, end = text.index(ISA_BEGIN), text.index(ISA_END)
        assert begin < end
        committed = text[begin + len(ISA_BEGIN):end].strip()
        assert committed == generate_isa_table().strip()

    def test_drift_is_detected(self, tmp_path):
        (tmp_path / "docs").mkdir()
        stale = f"{ISA_BEGIN}\n| stale |\n{ISA_END}\n"
        (tmp_path / "docs" / "isa.md").write_text(stale, encoding="utf-8")
        errors = check_isa_table(tmp_path)
        assert errors and "drift" in errors[0]


class TestCrosslinks:
    def test_repo_docs_have_no_broken_links(self):
        assert check_crosslinks(REPO) == []

    def test_broken_link_is_reported(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "isa.md").write_text(
            "see [gone](missing.md) and `src/repro/nope.py`\n", encoding="utf-8"
        )
        errors = check_crosslinks(tmp_path)
        joined = "\n".join(errors)
        assert "missing.md" in joined
        assert "src/repro/nope.py" in joined


class TestExampleExtraction:
    def test_markers_attach_to_next_fence(self, tmp_path):
        doc = tmp_path / "sample.md"
        doc.write_text(
            "intro\n\n"
            "<!-- docs-check: skip -->\n"
            "```bash\nrepro serve\n```\n\n"
            "<!-- docs-check: expect hello -->\n"
            "```python\nprint('hello')\n```\n\n"
            "prose resets markers\n\n"
            "<!-- docs-check: expect orphaned -->\n"
            "more prose\n\n"
            "```python\nprint('plain')\n```\n",
            encoding="utf-8",
        )
        examples = extract_examples(doc)
        assert [e.lang for e in examples] == ["bash", "python", "python"]
        assert examples[0].skip and not examples[0].expects
        assert examples[1].expects == ["hello"]
        assert not examples[2].skip and examples[2].expects == []

    def test_isa_md_round_trip_example_runs(self):
        examples = [e for e in extract_examples(REPO / "docs" / "isa.md")
                    if e.lang == "python" and not e.skip]
        assert examples, "docs/isa.md lost its checked asm example"
        for example in examples:
            out = run_example(example)
            for expect in example.expects:
                assert expect in out, f"{example.label}: missing {expect!r}"

    def test_python_example_failure_propagates(self, tmp_path):
        bad = Example(tmp_path / "x.md", 1, "python", "raise ValueError('boom')")
        with pytest.raises(ValueError):
            run_example(bad)


def test_structural_docscheck_is_clean():
    """The examples=False subset must always hold in tier 1."""
    assert run_docscheck(REPO, examples=False) == []
