"""Timing-model invariants: monotonicity and ordering properties that must
hold regardless of calibration constants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine, cc_ops
from repro.params import small_test_machine


def staged_machine(size, warm="l3"):
    m = ComputeCacheMachine(small_test_machine())
    a, c = m.arena.alloc_colocated(size, 2)
    m.load(a, bytes([0x5A]) * size)
    if warm == "l3":
        m.warm_l3(a, size)
        m.warm_l3(c, size)
    elif warm == "l1":
        m.touch_range(a, size)
        m.touch_range(c, size, for_write=True)
    return m, a, c


class TestMonotonicity:
    @given(st.sampled_from([(128, 512), (256, 1024), (512, 2048)]))
    @settings(max_examples=6, deadline=None)
    def test_larger_operands_cost_more(self, sizes):
        small, large = sizes
        m1, a1, c1 = staged_machine(small)
        m2, a2, c2 = staged_machine(large)
        r_small = m1.cc(cc_ops.cc_copy(a1, c1, small))
        r_large = m2.cc(cc_ops.cc_copy(a2, c2, large))
        assert r_large.cycles > r_small.cycles
        assert r_large.occupancy_cycles > r_small.occupancy_cycles

    def test_warm_cheaper_than_cold(self):
        m_cold, a, c = staged_machine(1024, warm="none")
        cold = m_cold.cc(cc_ops.cc_copy(a, c, 1024))
        m_warm, a, c = staged_machine(1024, warm="l3")
        warm = m_warm.cc(cc_ops.cc_copy(a, c, 1024))
        assert warm.fetch_cycles < cold.fetch_cycles
        assert warm.cycles < cold.cycles

    def test_occupancy_never_exceeds_latency(self):
        for size in (128, 512, 2048):
            m, a, c = staged_machine(size)
            res = m.cc(cc_ops.cc_copy(a, c, size))
            assert 0 < res.occupancy_cycles <= res.cycles

    def test_energy_grows_with_size(self):
        totals = []
        for size in (256, 1024, 4096):
            m, a, c = staged_machine(size)
            snap = m.snapshot_energy()
            m.cc(cc_ops.cc_copy(a, c, size))
            totals.append(m.energy_since(snap).total())
        assert totals[0] < totals[1] < totals[2]


class TestLevelOrdering:
    def test_l1_op_cheaper_energy_than_l3(self):
        """Table V: every op costs less at L1 than at L3 per block."""
        m1, a, c = staged_machine(512, warm="l1")
        snap = m1.snapshot_energy()
        res1 = m1.cc(cc_ops.cc_copy(a, c, 512))
        e_l1 = m1.energy_since(snap).total()
        assert res1.level == "L1"
        m3, a, c = staged_machine(512, warm="l3")
        snap = m3.snapshot_energy()
        res3 = m3.cc(cc_ops.cc_copy(a, c, 512))
        e_l3 = m3.energy_since(snap).total()
        assert res3.level == "L3"
        assert e_l1 < e_l3

    def test_nearplace_never_cheaper_than_inplace(self):
        for op_builder in (
            lambda a, c, n: cc_ops.cc_copy(a, c, n),
            lambda a, c, n: cc_ops.cc_not(a, c, n),
        ):
            m, a, c = staged_machine(512)
            snap = m.snapshot_energy()
            m.cc(op_builder(a, c, 512))
            e_in = m.energy_since(snap).total()
            m2, a2, c2 = staged_machine(512)
            snap = m2.snapshot_energy()
            m2.cc(op_builder(a2, c2, 512), force_nearplace=True)
            e_near = m2.energy_since(snap).total()
            assert e_in < e_near


class TestDeterminism:
    def test_identical_runs_identical_numbers(self):
        """The whole machine is deterministic: same inputs, same cycles,
        same energy, bit for bit."""
        results = []
        for _ in range(2):
            m, a, c = staged_machine(1024)
            snap = m.snapshot_energy()
            res = m.cc(cc_ops.cc_xor(a, a, c, 1024))
            results.append((res.cycles, res.occupancy_cycles,
                            m.energy_since(snap).total(), m.peek(c, 16)))
        assert results[0] == results[1]

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_data_independence_of_timing(self, seed):
        """Cycles depend on addresses/residency, never on data values -
        a no-timing-side-channel property of the model."""
        import numpy as np

        rng = np.random.default_rng(seed)
        m, a, c = staged_machine(512, warm="none")
        # Overwrite the staged data with seed-dependent bytes (backdoor).
        m.hierarchy.memory.load(a, rng.integers(0, 256, 512, dtype=np.uint8)
                                .tobytes())
        res = m.cc(cc_ops.cc_copy(a, c, 512))
        baseline_m, ba, bc = staged_machine(512, warm="none")
        baseline = baseline_m.cc(cc_ops.cc_copy(ba, bc, 512))
        assert res.cycles == baseline.cycles
