"""Compute sub-array tests: every in-place operation is bit-exact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, ISAError
from repro.sram import ComputeSubarray, SubarrayTiming
from repro.sram.timing import DELAY_MULTIPLIER, ENERGY_MULTIPLIER

BLOCK = 64
block_data = st.binary(min_size=BLOCK, max_size=BLOCK)


@pytest.fixture
def sub():
    return ComputeSubarray(rows=16, cols=BLOCK * 8)


class TestConventionalAccess:
    def test_write_read_round_trip(self, sub, make_bytes):
        data = make_bytes(BLOCK)
        sub.write_block(3, data)
        assert sub.read_block(3) == data

    def test_wrong_size_write(self, sub):
        with pytest.raises(AddressError):
            sub.write_block(0, b"\x00" * 32)

    def test_reads_counted(self, sub):
        sub.write_block(0, bytes(BLOCK))
        sub.read_block(0)
        sub.read_block(0)
        assert sub.stats.reads == 2
        assert sub.stats.writes == 1


class TestLogicalOps:
    @given(block_data, block_data)
    @settings(max_examples=25)
    def test_and_or_xor_match_numpy(self, a, b):
        sub = ComputeSubarray(rows=4, cols=BLOCK * 8)
        sub.write_block(0, a)
        sub.write_block(1, b)
        na = np.frombuffer(a, dtype=np.uint8)
        nb = np.frombuffer(b, dtype=np.uint8)
        assert sub.op_and(0, 1) == (na & nb).tobytes()
        assert sub.op_or(0, 1) == (na | nb).tobytes()
        assert sub.op_xor(0, 1) == (na ^ nb).tobytes()
        assert sub.op_nor(0, 1) == (~(na | nb)).astype(np.uint8).tobytes()

    def test_not_matches_complement(self, sub, make_bytes):
        data = make_bytes(BLOCK)
        sub.write_block(0, data)
        expected = (~np.frombuffer(data, dtype=np.uint8)).astype(np.uint8).tobytes()
        assert sub.op_not(0) == expected

    def test_writeback_to_dest_row(self, sub, make_bytes):
        a, b = make_bytes(BLOCK), make_bytes(BLOCK)
        sub.write_block(0, a)
        sub.write_block(1, b)
        sub.op_xor(0, 1, dest=2)
        na = np.frombuffer(a, dtype=np.uint8)
        nb = np.frombuffer(b, dtype=np.uint8)
        assert sub.read_block(2) == (na ^ nb).tobytes()

    def test_sources_survive_operation(self, sub, make_bytes):
        """Non-destructive multi-row activation: operands intact after op."""
        a, b = make_bytes(BLOCK), make_bytes(BLOCK)
        sub.write_block(0, a)
        sub.write_block(1, b)
        sub.op_and(0, 1, dest=3)
        assert sub.read_block(0) == a
        assert sub.read_block(1) == b


class TestCopyAndZero:
    def test_copy_moves_data(self, sub, make_bytes):
        data = make_bytes(BLOCK)
        sub.write_block(5, data)
        returned = sub.op_copy(5, 9)
        assert returned == data
        assert sub.read_block(9) == data
        assert sub.read_block(5) == data  # source intact

    def test_copy_uses_feedback_not_external_write(self, sub, make_bytes):
        """The copy path never latches data outside the sub-array: the
        write count reflects only explicit writes."""
        data = make_bytes(BLOCK)
        sub.write_block(0, data)
        before = sub.stats.writes
        sub.op_copy(0, 1)
        assert sub.stats.writes == before
        assert sub.stats.compute_ops.get("copy") == 1

    def test_buz_zeroes_row(self, sub, make_bytes):
        sub.write_block(7, make_bytes(BLOCK))
        sub.op_buz(7)
        assert sub.read_block(7) == bytes(BLOCK)


class TestCompareSearch:
    def test_cmp_equal_rows(self, sub, make_bytes):
        data = make_bytes(BLOCK)
        sub.write_block(0, data)
        sub.write_block(1, data)
        assert sub.op_cmp(0, 1) == 0xFF  # all 8 words match

    def test_cmp_word_granularity(self, sub, make_bytes):
        data = bytearray(make_bytes(BLOCK))
        other = bytearray(data)
        other[2 * 8] ^= 0x01  # corrupt word 2
        other[7 * 8 + 3] ^= 0x80  # corrupt word 7
        sub.write_block(0, bytes(data))
        sub.write_block(1, bytes(other))
        mask = sub.op_cmp(0, 1)
        assert mask == 0xFF & ~(1 << 2) & ~(1 << 7)

    def test_search_block_granularity(self, sub, make_bytes):
        key = make_bytes(BLOCK)
        sub.write_block(0, key)
        sub.write_block(1, make_bytes(BLOCK))
        key_row = 8
        sub.write_block(key_row, key)
        assert sub.op_search(0, key_row, key_bytes=BLOCK) == 1
        assert sub.op_search(1, key_row, key_bytes=BLOCK) == 0

    @given(block_data, block_data)
    @settings(max_examples=25)
    def test_cmp_matches_word_comparison(self, a, b):
        sub = ComputeSubarray(rows=4, cols=BLOCK * 8)
        sub.write_block(0, a)
        sub.write_block(1, b)
        mask = sub.op_cmp(0, 1)
        for w in range(8):
            expected = a[w * 8 : (w + 1) * 8] == b[w * 8 : (w + 1) * 8]
            assert bool(mask & (1 << w)) == expected


class TestClmul:
    @given(block_data, block_data, st.sampled_from([64, 128, 256]))
    @settings(max_examples=25)
    def test_clmul_matches_parity_of_and(self, a, b, lane_bits):
        sub = ComputeSubarray(rows=4, cols=BLOCK * 8)
        sub.write_block(0, a)
        sub.write_block(1, b)
        packed = sub.op_clmul(0, 1, lane_bits)
        mask = int.from_bytes(packed, "little")
        lane_bytes = lane_bits // 8
        for i in range((BLOCK * 8) // lane_bits):
            chunk_a = a[i * lane_bytes : (i + 1) * lane_bytes]
            chunk_b = b[i * lane_bytes : (i + 1) * lane_bytes]
            ones = sum(bin(x & y).count("1") for x, y in zip(chunk_a, chunk_b))
            assert bool(mask & (1 << i)) == bool(ones & 1)

    def test_bad_lane_width(self, sub):
        sub.write_block(0, bytes(BLOCK))
        sub.write_block(1, bytes(BLOCK))
        with pytest.raises(ISAError):
            sub.op_clmul(0, 1, 32)


class TestTimingAnnotation:
    """Section VI-C: logic ops 3x delay, others 2x; energy 1.5/2/2.5x."""

    def test_delay_multipliers(self):
        t = SubarrayTiming(access_delay_cycles=4.0)
        assert t.op_delay("and") == 12.0
        assert t.op_delay("copy") == 8.0
        assert t.op_delay("read") == 4.0

    def test_energy_multipliers(self):
        t = SubarrayTiming(access_energy_pj=100.0)
        assert t.op_energy("cmp") == 150.0
        assert t.op_energy("buz") == 200.0
        assert t.op_energy("xor") == 250.0

    def test_multiplier_tables_complete(self):
        for op in ("and", "or", "xor", "not", "copy", "buz", "cmp", "search", "clmul"):
            assert op in DELAY_MULTIPLIER
            assert op in ENERGY_MULTIPLIER

    def test_unknown_op_rejected(self):
        t = SubarrayTiming()
        with pytest.raises(ISAError):
            t.op_delay("frobnicate")

    def test_energy_accumulates(self, sub):
        sub.write_block(0, bytes(BLOCK))
        sub.write_block(1, bytes(BLOCK))
        before = sub.stats.energy_pj
        sub.op_and(0, 1)
        assert sub.stats.energy_pj > before
