"""Multi-core interleaved execution tests."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cpu.multicore import MulticoreResult, MulticoreRunner
from repro.cpu.program import Instr, Program
from repro.cpu.simd import simd_or
from repro.errors import ReproError
from repro.params import multi_cluster, small_test_machine


@pytest.fixture
def m():
    return ComputeCacheMachine(small_test_machine())


class TestMulticoreRunner:
    def test_parallel_or_kernels(self, m, make_bytes):
        """Each core ORs its own buffers; both results exact, makespan ~ one
        core's time (disjoint data, little contention)."""
        runner = MulticoreRunner(m, chunk=16)
        programs, expected = {}, {}
        for core in range(2):
            a, b, c = m.arena.alloc_colocated(256, 3)
            da, db = make_bytes(256), make_bytes(256)
            m.load(a, da)
            m.load(b, db)
            programs[core] = simd_or(a, b, c, 256)
            expected[core] = (
                c, (np.frombuffer(da, np.uint8) | np.frombuffer(db, np.uint8)).tobytes()
            )
        result = runner.run(programs)
        for core, (c, exp) in expected.items():
            assert m.peek(c, 256) == exp
        assert result.makespan >= max(r.cycles for r in result.per_core.values())
        assert result.total_instructions == sum(len(p) for p in programs.values())

    def test_cc_programs_in_parallel(self, m, make_bytes):
        runner = MulticoreRunner(m, chunk=4)
        programs = {}
        checks = []
        for core in range(2):
            a, c = m.arena.alloc_colocated(256, 2)
            data = make_bytes(256)
            m.load(a, data)
            programs[core] = Program(f"cc{core}",
                                     [Instr.cc_op(cc_ops.cc_copy(a, c, 256))])
            checks.append((c, data))
        runner.run(programs)
        for c, data in checks:
            assert m.peek(c, 256) == data
        m.hierarchy.check_inclusion()
        m.hierarchy.check_single_writer()

    def test_shared_data_contention(self, m, make_bytes):
        """Both cores hammer the same buffer: interleaving exercises the
        coherence protocol, and the final value is one core's last write."""
        addr = m.arena.alloc_page_aligned(64)
        m.load(addr, make_bytes(64))
        programs = {
            0: Program("w0", [Instr.store(addr, b"\xAA" * 8)] * 8),
            1: Program("w1", [Instr.store(addr, b"\xBB" * 8)] * 8),
        }
        MulticoreRunner(m, chunk=2).run(programs)
        assert m.peek(addr, 8) in (b"\xAA" * 8, b"\xBB" * 8)
        m.hierarchy.check_single_writer()

    def test_makespan_is_slowest_core(self, m):
        fast = Program("fast", [Instr.scalar()] * 4)
        slow = Program("slow", [Instr.scalar()] * 400)
        result = MulticoreRunner(m, chunk=8).run({0: fast, 1: slow})
        assert result.makespan == result.per_core[1].cycles
        assert result.per_core[0].cycles < result.per_core[1].cycles
        assert result.aggregate_ipc > 0

    def test_speedup_metric(self, m):
        per_core = Program("p", [Instr.scalar()] * 100)
        result = MulticoreRunner(m).run({0: per_core, 1: Program("q", list(per_core))})
        serial = 200.0
        assert result.speedup_over(serial) == pytest.approx(serial / result.makespan)

    def test_validation(self, m):
        with pytest.raises(ReproError):
            MulticoreRunner(m, chunk=0)
        with pytest.raises(ReproError):
            MulticoreRunner(m).run({7: Program("x", [Instr.scalar()])})

    def test_empty_program_terminates(self, m):
        result = MulticoreRunner(m).run({0: Program("empty", [])})
        assert result.per_core[0].instructions == 0


class TestDegenerateAggregates:
    """Empty and zero-cycle parallel sections must not divide by zero."""

    def test_no_programs(self, m):
        result = MulticoreRunner(m).run({})
        assert result.makespan == 0.0
        assert result.total_instructions == 0
        assert result.aggregate_ipc == 0.0
        assert result.speedup_over(100.0) == 0.0

    def test_all_empty_programs(self, m):
        result = MulticoreRunner(m).run({0: Program("e0", []),
                                         1: Program("e1", [])})
        assert result.makespan == 0.0
        assert result.aggregate_ipc == 0.0
        assert result.speedup_over(0.0) == 0.0

    def test_empty_result_object(self):
        result = MulticoreResult(per_core={})
        assert result.makespan == 0.0
        assert result.aggregate_ipc == 0.0
        assert result.speedup_over(42.0) == 0.0
        assert result.cluster_makespans(2, 2) == {0: 0.0, 1: 0.0}


class TestClusterMakespans:
    def test_per_cluster_view(self):
        m = ComputeCacheMachine(multi_cluster(2, 2))
        fast = Program("fast", [Instr.scalar()] * 4)
        slow = Program("slow", [Instr.scalar()] * 400)
        result = MulticoreRunner(m, chunk=8).run({
            0: Program("f0", list(fast)), 1: Program("f1", list(fast)),
            2: Program("s2", list(slow)), 3: Program("s3", list(slow)),
        })
        spans = result.cluster_makespans(2, 2)
        assert spans[0] == max(result.per_core[0].cycles,
                               result.per_core[1].cycles)
        assert spans[1] == max(result.per_core[2].cycles,
                               result.per_core[3].cycles)
        assert max(spans.values()) == result.makespan
        assert spans[0] < spans[1]

    def test_idle_cluster_reports_zero(self):
        m = ComputeCacheMachine(multi_cluster(2, 2))
        result = MulticoreRunner(m).run({0: Program("p", [Instr.scalar()])})
        spans = result.cluster_makespans(2, 2)
        assert spans[1] == 0.0
        assert spans[0] > 0.0


class TestMulticoreRunnerChaos:
    """Multi-cluster streambw points through a chaos-injected sweep
    runner: worker timeouts and a pool crash must never corrupt results
    (the PR 4 zero-silent-corruption audit, on the PR 9 topology)."""

    def _specs(self):
        from repro.bench.runner import Point

        cells = [("copy", "scalar"), ("copy", "cc"),
                 ("add", "scalar"), ("add", "cc")]
        return [Point("streambw", {
            "kernel": kernel, "variant": variant, "clusters": 2,
            "cores_per_cluster": 2, "words": 128, "placement": "hub",
        }, label=f"chaos:{kernel}/{variant}") for kernel, variant in cells]

    def test_zero_silent_corruption_under_worker_faults(self):
        from repro.bench.runner import PointRunner
        from repro.faults import FaultPlan, FaultSpec, RunnerChaos

        golden = PointRunner(use_cache=False).run(self._specs())
        assert all(doc["verified"] for doc in golden)

        plan = FaultPlan(seed=9, specs=(
            FaultSpec("runner.timeout", probability=1.0, max_injections=2),
            FaultSpec("runner.crash", probability=1.0, max_injections=1),
        ))
        runner = PointRunner(jobs=2, use_cache=False, timeout_s=30.0,
                             retries=1)
        chaos = RunnerChaos(plan)
        chaos.install(runner)
        docs = runner.run(self._specs())

        assert sum(chaos.injected.values()) == 3  # faults actually fired
        silent = sum(1 for doc, want in zip(docs, golden) if doc != want)
        assert silent == 0
        assert runner.stats.failures == 0
