"""Vector LSQ and split store-buffer tests (Section IV-H)."""

import pytest

from repro.core.lsq import (
    AddressRange,
    ScalarStoreBuffer,
    StoreOrderPolice,
    VectorLSQ,
    VectorStoreBuffer,
)
from repro.errors import ReproError


class TestAddressRange:
    def test_overlap(self):
        a = AddressRange(0x100, 0x40)
        assert a.overlaps(AddressRange(0x13F, 1))
        assert a.overlaps(AddressRange(0x0, 0x101))
        assert not a.overlaps(AddressRange(0x140, 0x40))
        assert not a.overlaps(AddressRange(0x0, 0x100))


class TestVectorLSQ:
    def test_range_conflict_detection(self):
        lsq = VectorLSQ()
        lsq.insert([AddressRange(0x1000, 0x200)], is_store=True)
        lsq.insert([AddressRange(0x4000, 0x200)], is_store=False)
        conflicts = lsq.conflicting_stores(AddressRange(0x11C0, 8))
        assert len(conflicts) == 1
        assert not lsq.conflicting_stores(AddressRange(0x4000, 8))  # load, not store

    def test_capacity(self):
        lsq = VectorLSQ(capacity=1)
        lsq.insert([AddressRange(0, 64)], is_store=False)
        with pytest.raises(ReproError):
            lsq.insert([AddressRange(64, 64)], is_store=False)

    def test_max_comparisons_per_entry(self):
        """Hardware supports at most 12 range comparisons per entry."""
        lsq = VectorLSQ()
        ranges = [AddressRange(i * 0x1000, 64) for i in range(13)]
        with pytest.raises(ReproError):
            lsq.insert(ranges, is_store=True)

    def test_complete_removes(self):
        lsq = VectorLSQ()
        e = lsq.insert([AddressRange(0, 64)], is_store=True)
        lsq.complete(e.entry_id)
        assert len(lsq) == 0
        with pytest.raises(ReproError):
            lsq.complete(e.entry_id)


class TestScalarStoreBuffer:
    def test_coalescing_same_block(self):
        buf = ScalarStoreBuffer()
        e1 = buf.insert(0x100, 8)
        e2 = buf.insert(0x108, 8)
        assert e1 is e2
        assert e1.size == 16
        assert buf.coalesced == 1

    def test_no_coalescing_across_blocks(self):
        buf = ScalarStoreBuffer()
        e1 = buf.insert(0x100, 8)
        e2 = buf.insert(0x140, 8)
        assert e1 is not e2


class TestVectorStoreBuffer:
    def test_never_coalesces(self):
        """CC-RW output is unknown until the cache performs it (IV-H)."""
        buf = VectorStoreBuffer()
        e1 = buf.insert([AddressRange(0x100, 64)])
        e2 = buf.insert([AddressRange(0x100, 64)])
        assert e1 is not e2
        assert len(buf) == 2


class TestStoreOrderPolice:
    def test_scalar_stalls_behind_vector(self):
        """Same-location stores in different buffers keep program order."""
        police = StoreOrderPolice(ScalarStoreBuffer(), VectorStoreBuffer())
        vec = police.admit_vector([AddressRange(0x1000, 0x100)])
        scalar = police.admit_scalar(0x1040, 8)
        assert scalar.stalled
        assert vec.successor == scalar.entry_id
        police.vector_completed(vec.entry_id)
        assert not scalar.stalled

    def test_vector_stalls_behind_scalar(self):
        police = StoreOrderPolice(ScalarStoreBuffer(), VectorStoreBuffer())
        scalar = police.admit_scalar(0x1040, 8)
        vec = police.admit_vector([AddressRange(0x1000, 0x100)])
        assert vec.stalled
        police.scalar_completed(scalar.entry_id)
        assert not vec.stalled

    def test_disjoint_stores_do_not_stall(self):
        police = StoreOrderPolice(ScalarStoreBuffer(), VectorStoreBuffer())
        police.admit_vector([AddressRange(0x1000, 0x100)])
        scalar = police.admit_scalar(0x9000, 8)
        assert not scalar.stalled
        assert police.stalls_imposed == 0

    def test_forwarding_rules(self):
        """No forwarding from vector stores, none to vector loads."""
        assert StoreOrderPolice.may_forward(False, False)
        assert not StoreOrderPolice.may_forward(True, False)
        assert not StoreOrderPolice.may_forward(False, True)
        assert not StoreOrderPolice.may_forward(True, True)
