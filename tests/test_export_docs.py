"""Results export and repository-documentation consistency tests."""

import json
import re
from pathlib import Path

import pytest

from repro.bench.export import export_fast, write_results

REPO = Path(__file__).resolve().parent.parent


class TestResultsExport:
    @pytest.fixture(scope="class")
    def doc(self):
        return export_fast()

    def test_schema_and_validation(self, doc):
        assert doc["schema"] == "repro.results/1"
        assert doc["validation_ok"] is True

    def test_provenance_header(self, doc):
        """Backend + git/seed provenance distinguish cached vs fresh trees."""
        from repro.bench.points import WORKLOAD_SEEDS
        from repro.bench.runner import code_fingerprint

        prov = doc["provenance"]
        assert prov["backend"] == "packed"
        assert prov["code_version"] == code_fingerprint()
        assert prov["workload_seeds"] == WORKLOAD_SEEDS
        # git_commit is a hex hash (with optional -dirty) or None outside git.
        commit = prov["git_commit"]
        assert commit is None or len(commit.split("-")[0]) == 40

    def test_machine_config_embedded(self, doc):
        from repro.config_io import config_from_dict
        from repro.params import sandybridge_8core

        assert config_from_dict(doc["machine"]) == sandybridge_8core()

    def test_tables_present(self, doc):
        assert len(doc["table1"]) == 3
        assert len(doc["table3"]) == 3
        assert len(doc["table5"]) == 3

    def test_figure7_entries_complete(self, doc):
        for kernel in ("copy", "compare", "search", "logical"):
            for cfg in ("base32", "cc"):
                entry = doc["figure7"][kernel][cfg]
                assert entry["cycles"] > 0
                assert entry["dynamic_nj"] > 0
                assert set(entry["dynamic_breakdown_nj"]) == {
                    "core", "cache-access", "cache-ic", "noc"
                }

    def test_json_serializable_round_trip(self, doc, tmp_path):
        path = tmp_path / "results.json"
        written = write_results(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["figure7_summary"].keys() == written["figure7_summary"].keys()
        assert loaded["validation_ok"] is True


class TestDocumentationConsistency:
    """Every file path referenced in the markdown docs must exist."""

    PATH_RE = re.compile(
        r"`((?:src/repro|repro|benchmarks|tests|examples|docs)/[\w/\.]+?\.(?:py|md))`"
    )

    def _referenced_paths(self, markdown: Path) -> set[str]:
        text = markdown.read_text(encoding="utf-8")
        return set(self.PATH_RE.findall(text))

    @pytest.mark.parametrize("doc_name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/architecture.md", "docs/isa.md", "docs/modeling.md",
        "docs/api.md", "docs/profiling.md", "docs/benchmarks.md",
        "docs/neural_cache.md", "docs/faults.md", "docs/serving.md",
        "benchmarks/README.md",
    ])
    def test_referenced_files_exist(self, doc_name):
        doc = REPO / doc_name
        assert doc.exists(), f"missing documentation file {doc_name}"
        for ref in self._referenced_paths(doc):
            candidates = [REPO / ref, REPO / "src" / ref]
            assert any(c.exists() for c in candidates), (
                f"{doc_name} references {ref}, which does not exist"
            )

    def test_every_benchmark_file_documented(self):
        """DESIGN.md's experiment index must cover every benchmark file."""
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        corpus = design + readme
        for bench in (REPO / "benchmarks").glob("test_*.py"):
            assert bench.name in corpus or bench.stem.split("test_")[1] in corpus, (
                f"benchmarks/{bench.name} is not mentioned in DESIGN.md/README.md"
            )

    def test_every_example_runs_header(self):
        """Every example declares how to run it."""
        for example in (REPO / "examples").glob("*.py"):
            text = example.read_text(encoding="utf-8")
            assert "Run:" in text, f"{example.name} lacks a Run: line"
            assert text.startswith("#!/usr/bin/env python3"), example.name

    def test_experiments_lists_all_figures(self):
        text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for exhibit in ("Table I", "Table III", "Table V", "Figure 3",
                        "Figure 7", "Figure 8", "Figure 9", "Figure 10",
                        "Figure 11"):
            assert exhibit in text, f"EXPERIMENTS.md missing {exhibit}"
