"""Property-based testing of the full CC stack.

Random operand layouts (offsets, sizes, page positions, cache residency)
and random operation sequences are checked against a flat numpy reference,
regardless of which path (in-place / near-place / split pieces) the
controller chose.  Also: algebraic identities computed *entirely* with CC
instructions, and random multi-core interleavings of CC ops and stores.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine, cc_ops
from repro.params import BLOCK_SIZE, PAGE_SIZE, small_test_machine


def np_u8(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


@st.composite
def layouts(draw):
    """Random operand layouts: aligned or deliberately offset."""
    blocks = draw(st.integers(1, 8))
    size = blocks * BLOCK_SIZE
    colocated = draw(st.booleans())
    a_off = draw(st.integers(0, 15)) * BLOCK_SIZE
    if colocated:
        b_off, c_off = a_off, a_off
    else:
        b_off = draw(st.integers(0, 15)) * BLOCK_SIZE
        c_off = draw(st.integers(0, 15)) * BLOCK_SIZE
    warm = draw(st.sampled_from(["none", "l1", "l3"]))
    return size, a_off, b_off, c_off, warm


@given(
    layouts(),
    st.sampled_from(["and", "or", "xor", "copy"]),
    st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cc_correct_for_any_layout(layout, op, seed_a, seed_b):
    """Whatever the layout (co-located or not, resident or not), the
    architectural result equals the numpy reference."""
    size, a_off, b_off, c_off, warm = layout
    m = ComputeCacheMachine(small_test_machine())
    pages = 16 * PAGE_SIZE
    a = m.arena.alloc(pages) + a_off
    b = m.arena.alloc(pages, align=PAGE_SIZE) + b_off
    c = m.arena.alloc(pages, align=PAGE_SIZE) + c_off
    da = (seed_a * ((size // BLOCK_SIZE) + 1))[:size]
    db = (seed_b * ((size // BLOCK_SIZE) + 1))[:size]
    m.load(a, da)
    m.load(b, db)
    if warm == "l1":
        for addr in (a, b):
            m.touch_range(addr, size)
    elif warm == "l3":
        for addr in (a, b):
            m.warm_l3(addr, size)

    if op == "copy":
        instr = cc_ops.cc_copy(a, c, size)
        expected = da
    elif op == "and":
        instr = cc_ops.cc_and(a, b, c, size)
        expected = (np_u8(da) & np_u8(db)).tobytes()
    elif op == "or":
        instr = cc_ops.cc_or(a, b, c, size)
        expected = (np_u8(da) | np_u8(db)).tobytes()
    else:
        instr = cc_ops.cc_xor(a, b, c, size)
        expected = (np_u8(da) ^ np_u8(db)).tobytes()

    res = m.cc(instr)
    assert m.peek(c, size) == expected
    assert m.peek(a, size) == da  # sources intact
    if op != "copy":
        assert m.peek(b, size) == db
    # Accounting sanity: every block op landed somewhere.
    assert res.inplace_ops + res.nearplace_ops + res.risc_ops == size // BLOCK_SIZE
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()


@given(st.binary(min_size=256, max_size=256), st.binary(min_size=256, max_size=256))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_de_morgan_entirely_in_cache(da, db):
    """~(a | b) == ~a & ~b, computed with CC instructions only."""
    m = ComputeCacheMachine(small_test_machine())
    size = 256
    a, b, t1, t2, t3, lhs, rhs = m.arena.alloc_colocated(size, 7)
    m.load(a, da)
    m.load(b, db)
    m.cc(cc_ops.cc_or(a, b, t1, size))
    m.cc(cc_ops.cc_not(t1, lhs, size))       # ~(a | b)
    m.cc(cc_ops.cc_not(a, t2, size))
    m.cc(cc_ops.cc_not(b, t3, size))
    m.cc(cc_ops.cc_and(t2, t3, rhs, size))   # ~a & ~b
    assert m.peek(lhs, size) == m.peek(rhs, size)
    mask = m.cc(cc_ops.cc_cmp(lhs, rhs, size)).result
    assert mask == (1 << (size // 8)) - 1    # cc_cmp agrees


@given(st.binary(min_size=128, max_size=128))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_xor_involution_in_cache(data):
    """(a ^ b) ^ b == a via two cc_xor into fresh destinations."""
    m = ComputeCacheMachine(small_test_machine())
    size = 128
    a, b, t, out = m.arena.alloc_colocated(size, 4)
    m.load(a, data)
    m.load(b, bytes(reversed(data)))
    m.cc(cc_ops.cc_xor(a, b, t, size))
    m.cc(cc_ops.cc_xor(t, b, out, size))
    assert m.peek(out, size) == data


@st.composite
def mixed_ops(draw):
    n = draw(st.integers(2, 12))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["store", "cc_copy", "cc_xor", "read"]))
        core = draw(st.integers(0, 1))
        buf = draw(st.integers(0, 2))
        value = draw(st.integers(0, 255))
        ops.append((kind, core, buf, value))
    return ops


@given(mixed_ops())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_multicore_cc_store_interleavings(ops):
    """Random interleavings of stores, reads, and CC ops from two cores
    stay coherent with a flat reference model."""
    size = 128
    m = ComputeCacheMachine(small_test_machine())
    bufs = m.arena.alloc_colocated(size, 4)
    reference = [bytearray(size) for _ in range(4)]
    for i, buf in enumerate(bufs):
        seed = bytes([i * 17 + 1]) * size
        m.load(buf, seed)
        reference[i][:] = seed

    for kind, core, buf, value in ops:
        if kind == "store":
            m.write(bufs[buf], bytes([value]) * 8, core=core)
            reference[buf][:8] = bytes([value]) * 8
        elif kind == "cc_copy":
            m.cc(cc_ops.cc_copy(bufs[buf], bufs[3], size), core=core)
            reference[3][:] = reference[buf]
        elif kind == "cc_xor":
            m.cc(cc_ops.cc_xor(bufs[0], bufs[1], bufs[2], size), core=core)
            reference[2][:] = bytes(
                x ^ y for x, y in zip(reference[0], reference[1])
            )
        else:
            out = m.read(bufs[buf], size, core=core)
            assert out == bytes(reference[buf])

    for i, buf in enumerate(bufs):
        assert m.peek(buf, size) == bytes(reference[i]), f"buffer {i}"
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()


@given(st.integers(1, 6), st.integers(0, 5))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_page_spanning_operands_exact(blocks_before_boundary, extra_blocks):
    """Operands straddling page boundaries split and still compute exactly."""
    m = ComputeCacheMachine(small_test_machine())
    size = (blocks_before_boundary + extra_blocks + 1) * BLOCK_SIZE
    region = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
    a = region + PAGE_SIZE - blocks_before_boundary * BLOCK_SIZE
    dest_region = m.arena.alloc(4 * PAGE_SIZE, align=PAGE_SIZE)
    c = dest_region + PAGE_SIZE - blocks_before_boundary * BLOCK_SIZE
    data = bytes(range(256)) * ((size // 256) + 1)
    data = data[:size]
    m.load(a, data)
    res = m.cc(cc_ops.cc_copy(a, c, size))
    assert m.peek(c, size) == data
    assert res.pieces >= 2
