"""Cross-validation of the analytic CC timing model against event simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.crossval import (
    analytic_makespan,
    round_robin_partitions,
    simulate_inplace_schedule,
    validate_schedule,
)
from repro.errors import ReproError


class TestEventSim:
    def test_single_op(self):
        res = simulate_inplace_schedule([0], op_latency=14)
        assert res.makespan == 14
        assert res.issue_stalls == 0

    def test_fully_parallel_ops(self):
        """64 ops over 64 partitions: issue 64 cycles, last starts at 63."""
        res = simulate_inplace_schedule(round_robin_partitions(64, 64), 14)
        assert res.makespan == 63 + 14
        assert res.issue_stalls == 0

    def test_fully_serial_ops(self):
        """All ops in one partition: back-to-back occupancy."""
        res = simulate_inplace_schedule([0] * 8, op_latency=14)
        assert res.makespan == 8 * 14
        assert res.issue_stalls > 0

    def test_wider_command_bus(self):
        narrow = simulate_inplace_schedule(round_robin_partitions(64, 64), 14, 1)
        wide = simulate_inplace_schedule(round_robin_partitions(64, 64), 14, 4)
        assert wide.makespan < narrow.makespan

    def test_bad_latency(self):
        with pytest.raises(ReproError):
            simulate_inplace_schedule([0], op_latency=0)


class TestAnalyticAgreement:
    def test_round_robin_exact_for_paper_geometry(self):
        """The layout real cache blocks produce (round-robin partitions):
        the controller's closed form must be within one issue quantum of
        the event simulation - for the paper's L3 (64 partitions) and 4 KB
        operands, exactly one cycle apart (inclusive vs exclusive start)."""
        for n_ops, n_parts in ((64, 64), (32, 64), (128, 64), (16, 4)):
            parts = round_robin_partitions(n_ops, n_parts)
            gap = validate_schedule(parts)["gap"]
            # The closed form counts issue + the busiest chain fully; the
            # event sim overlaps them, so the gap is at most one op
            # latency plus the one-cycle inclusive-start convention.
            assert 0 <= gap <= 15, (n_ops, n_parts, gap)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=48))
    @settings(max_examples=60, deadline=None)
    def test_analytic_upper_bounds_event_sim(self, parts):
        """For ANY op-to-partition mapping, the closed form is a true
        upper bound on the event simulation: head-of-line blocking can
        never exceed full issue + full busiest-chain serialization."""
        result = validate_schedule(parts, op_latency=14)
        assert result["analytic_makespan"] >= result["event_makespan"]

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_round_robin_gap_bounded(self, n_ops, n_parts):
        parts = round_robin_partitions(n_ops, n_parts)
        result = validate_schedule(parts, op_latency=14)
        # The closed form never undershoots, and overshoots by at most the
        # issue time + one op latency (issue fully overlaps the serialized
        # chain when partitions are scarce) - i.e. the controller's timing
        # is conservative: real CC hardware would be slightly *faster*.
        assert 0 <= result["gap"] <= n_ops + 15

    def test_controller_formula_matches_module(self):
        """The formula in the controller equals analytic_makespan here."""
        parts = round_robin_partitions(64, 64)
        issue = 64
        busiest = 1
        assert analytic_makespan(parts, 14) == issue + busiest * 14
