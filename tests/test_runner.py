"""Tests of the parallel sweep/figure execution engine (repro.bench.runner):
cache hit/miss semantics, timeout -> retry -> serial-fallback, degraded
(pool-less) execution, and parallel-vs-serial determinism."""

import json

import pytest

from repro.bench import runner as runner_mod
from repro.bench.microbench import figure7, kernel_point_spec
from repro.bench.runner import (
    Point,
    PointRunner,
    ResultCache,
    code_fingerprint,
    format_runner_profile,
    point_key,
    runner_wall_profile,
)
from repro.config_io import config_digest, config_from_dict, config_to_dict
from repro.errors import RunnerError
from repro.params import sandybridge_8core, small_test_machine

SMALL = lambda: config_to_dict(small_test_machine())  # noqa: E731


def small_kernel_point(kernel="copy", config="cc", size=512):
    return kernel_point_spec(kernel, config, size, machine=SMALL())


class TestCacheKeys:
    def test_key_is_deterministic_and_sensitive(self):
        key = point_key("kernel", {"kernel": "copy"}, "packed", "abc")
        assert key == point_key("kernel", {"kernel": "copy"}, "packed", "abc")
        assert key != point_key("kernel", {"kernel": "cmp"}, "packed", "abc")
        assert key != point_key("kernel", {"kernel": "copy"}, "bitexact", "abc")
        assert key != point_key("kernel", {"kernel": "copy"}, "packed", "xyz")
        assert key != point_key("app", {"kernel": "copy"}, "packed", "abc")

    def test_key_ignores_kwarg_ordering(self):
        assert point_key("f", {"a": 1, "b": 2}, "packed", "v") == \
            point_key("f", {"b": 2, "a": 1}, "packed", "v")

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 20

    def test_config_digest_covers_backend_and_geometry(self):
        base = sandybridge_8core()
        assert config_digest(base) == config_digest(sandybridge_8core())
        from dataclasses import replace

        assert config_digest(base) != config_digest(replace(base, cores=4))
        assert config_digest(base) != \
            config_digest(replace(base, backend="bitexact"))
        # Observability settings must NOT change the digest.
        assert config_digest(base) == \
            config_digest(replace(base, trace_events=True))

    def test_config_roundtrip_preserves_backend(self):
        from dataclasses import replace

        cfg = replace(small_test_machine(), backend="bitexact")
        doc = config_to_dict(cfg)
        assert doc["backend"] == "bitexact"
        assert config_from_dict(doc).backend == "bitexact"


class TestCacheHitMiss:
    def test_second_run_hits_config_change_misses(self, tmp_path):
        r1 = PointRunner(cache_dir=tmp_path, use_cache=True)
        [first] = r1.run([small_kernel_point()])
        assert r1.stats.computed == 1 and r1.stats.cache_hits == 0

        r2 = PointRunner(cache_dir=tmp_path, use_cache=True)
        [second] = r2.run([small_kernel_point()])
        assert r2.stats.cache_hits == 1 and r2.stats.computed == 0
        assert second == first

        # Changing the machine config (or any kwarg) is a miss.
        doc = SMALL()
        doc["cc"]["inplace_latency"] += 1
        r3 = PointRunner(cache_dir=tmp_path, use_cache=True)
        r3.run([kernel_point_spec("copy", "cc", 512, machine=doc)])
        assert r3.stats.cache_hits == 0 and r3.stats.computed == 1

    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        r1 = PointRunner(cache_dir=tmp_path, use_cache=True)
        r1.run([small_kernel_point()])
        monkeypatch.setattr(runner_mod, "_CODE_FINGERPRINT", "deadbeef")
        r2 = PointRunner(cache_dir=tmp_path, use_cache=True)
        r2.run([small_kernel_point()])
        assert r2.stats.cache_hits == 0 and r2.stats.computed == 1

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        r1 = PointRunner(cache_dir=tmp_path, use_cache=True)
        [result] = r1.run([small_kernel_point()])
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{not json", encoding="utf-8")
        r2 = PointRunner(cache_dir=tmp_path, use_cache=True)
        [again] = r2.run([small_kernel_point()])
        assert r2.stats.cache_hits == 0 and r2.stats.computed == 1
        assert again == result

    def test_cache_envelope_carries_provenance(self, tmp_path):
        runner = PointRunner(cache_dir=tmp_path, use_cache=True)
        runner.run([small_kernel_point()])
        envelope = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert envelope["schema"] == "repro.point-result/2"
        assert envelope["fn"] == "kernel"
        assert envelope["backend"] == "packed"
        assert envelope["code_version"] == code_fingerprint()
        assert envelope["result_sha256"] == runner_mod.result_digest(
            envelope["result"])

    def test_no_cache_never_touches_disk(self, tmp_path):
        runner = PointRunner(cache_dir=tmp_path / "cache", use_cache=False)
        runner.run([small_kernel_point()])
        assert not (tmp_path / "cache").exists()

    def test_within_batch_deduplication(self):
        runner = PointRunner()
        a, b = runner.run([small_kernel_point(), small_kernel_point()])
        assert a == b
        assert runner.stats.computed == 1
        assert runner.stats.deduplicated == 1


class TestDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        points = [small_kernel_point(k, c)
                  for k in ("copy", "compare", "search", "logical")
                  for c in ("base32", "cc")]
        serial = PointRunner(jobs=1).run(points)
        parallel = PointRunner(jobs=4).run(points)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_cached_results_bit_identical_to_fresh(self, tmp_path):
        points = [small_kernel_point("copy"), small_kernel_point("search")]
        fresh = PointRunner(cache_dir=tmp_path, use_cache=True).run(points)
        cached = PointRunner(cache_dir=tmp_path, use_cache=True).run(points)
        assert json.dumps(fresh, sort_keys=True) == \
            json.dumps(cached, sort_keys=True)

    def test_figure7_parallel_matches_serial(self):
        serial = figure7(size=512, runner=PointRunner(jobs=1))
        parallel = figure7(size=512, runner=PointRunner(jobs=2))
        for kernel, pair in serial.items():
            for config, meas in pair.items():
                other = parallel[kernel][config]
                assert other == meas


class TestFailureHandling:
    def test_timeout_retry_then_serial_fallback(self):
        runner = PointRunner(jobs=2, timeout_s=0.2, retries=1)
        point = Point("selftest", {"value": 7, "sleep_in_worker_s": 30.0},
                      label="sleepy")
        [result] = runner.run([point])
        assert result == {"doubled": 14, "value": 7}
        assert runner.stats.timeouts == 2          # initial + one retry
        assert runner.stats.retries == 1
        assert runner.stats.serial_fallbacks == 1
        phases = [e.phase for e in runner.tracer.by_kind("runner.point")]
        assert phases == ["timeout", "retry", "timeout", "serial-fallback"]

    def test_pool_unavailable_degrades_to_serial(self, monkeypatch):
        def broken_pool(workers):
            raise OSError("no multiprocessing here")

        monkeypatch.setattr(PointRunner, "_make_pool",
                            staticmethod(broken_pool))
        runner = PointRunner(jobs=4)
        results = runner.run([Point("selftest", {"value": v})
                              for v in (1, 2, 3)])
        assert [r["doubled"] for r in results] == [2, 4, 6]
        assert runner.stats.computed == 3
        assert any(e.outcome == "pool-unavailable"
                   for e in runner.tracer.by_kind("runner.point"))

    def test_point_failure_raises_runner_error(self):
        runner = PointRunner()
        with pytest.raises(RunnerError, match="selftest"):
            runner.run([Point("selftest", {"fail": True})])
        assert runner.stats.failures == 1

    def test_point_failure_in_pool_raises_runner_error(self):
        runner = PointRunner(jobs=2)
        with pytest.raises(RunnerError):
            runner.run([Point("selftest", {"fail": True}),
                        Point("selftest", {"value": 1})])

    def test_unknown_point_function(self):
        with pytest.raises(RunnerError, match="unknown point function"):
            PointRunner().run([Point("no-such-fn", {})])

    def test_invalid_construction(self):
        with pytest.raises(RunnerError):
            PointRunner(jobs=0)
        with pytest.raises(RunnerError):
            PointRunner(retries=-1)


class TestReporting:
    def test_stats_line_is_parseable(self):
        runner = PointRunner()
        runner.run([Point("selftest", {"value": 1})])
        line = runner.stats.line()
        assert line.startswith("cache-stats: ")
        fields = dict(part.split("=") for part in line.split()[1:])
        assert fields["points"] == "1"
        assert fields["computed"] == "1"
        assert fields["hit_rate"] == "0.0%"

    def test_wall_profile_folds_events(self, tmp_path):
        runner = PointRunner(cache_dir=tmp_path, use_cache=True)
        runner.run([Point("selftest", {"value": 1})])
        runner.run([Point("selftest", {"value": 1})])
        profile = runner_wall_profile(runner.tracer)
        assert profile["computed"]["count"] == 1
        assert profile["cache-hit"]["count"] == 1
        text = format_runner_profile(runner.tracer)
        assert "computed" in text and "cache-hit" in text

    def test_batch_event_emitted(self):
        runner = PointRunner()
        runner.run([Point("selftest", {"value": 1})])
        batches = runner.tracer.by_kind("runner.batch")
        assert len(batches) == 1 and batches[0].reason == "1 points"


class TestResultCacheUnit:
    def test_load_missing_is_none(self, tmp_path):
        assert ResultCache(tmp_path).load("0" * 64) is None

    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = Point("selftest", {"value": 3})
        cache.store("k" * 64, point, "packed", "v1", {"value": 3})
        assert cache.load("k" * 64) == {"value": 3}

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ("s" * 64 + ".json")).write_text(
            json.dumps({"schema": "other/1", "result": 1}))
        assert cache.load("s" * 64) is None


class TestResultCacheCorruption:
    """The miss-don't-crash, never-serve-garbage contract: any damaged,
    torn, or foreign envelope must read as a cache miss, after which a
    recompute overwrites it with a good one."""

    KEY = "c" * 64

    def stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(self.KEY, Point("selftest", {"value": 3}),
                    "packed", "v1", {"value": 3, "doubled": 6})
        return cache, tmp_path / (self.KEY + ".json")

    def test_truncated_envelope_is_miss(self, tmp_path):
        cache, path = self.stored(tmp_path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        assert cache.load(self.KEY) is None

    def test_invalid_utf8_is_miss(self, tmp_path):
        cache, path = self.stored(tmp_path)
        path.write_bytes(b"\xff\xfe garbage \x00" * 16)
        assert cache.load(self.KEY) is None

    def test_bitrotted_result_fails_integrity_digest(self, tmp_path):
        # The envelope still parses and carries the right schema and
        # provenance — only the result payload changed.  Before the
        # result_sha256 digest this was served as truth.
        cache, path = self.stored(tmp_path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["result"]["doubled"] = 7777
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.load(self.KEY) is None

    def test_non_dict_envelope_is_miss(self, tmp_path):
        cache, path = self.stored(tmp_path)
        path.write_text(json.dumps(["not", "an", "envelope"]))
        assert cache.load(self.KEY) is None

    def test_missing_result_field_is_miss(self, tmp_path):
        cache, path = self.stored(tmp_path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        del envelope["result"]
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.load(self.KEY) is None

    def test_provenance_mismatch_is_miss(self, tmp_path):
        cache, _path = self.stored(tmp_path)
        assert cache.load(self.KEY, fn="selftest", backend="packed",
                          code_version="v1") is not None
        assert cache.load(self.KEY, fn="kernel") is None
        assert cache.load(self.KEY, backend="bitexact") is None
        assert cache.load(self.KEY, code_version="v2") is None

    def test_legacy_schema_envelope_is_miss(self, tmp_path):
        cache, path = self.stored(tmp_path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema"] = "repro.point-result/1"
        del envelope["result_sha256"]
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.load(self.KEY) is None

    def test_runner_recomputes_over_corruption(self, tmp_path):
        """End to end: a corrupted entry is recomputed and the repaired
        envelope serves subsequent runs bit-identically."""
        [fresh] = PointRunner(cache_dir=tmp_path, use_cache=True).run(
            [small_kernel_point()])
        [path] = tmp_path.glob("*.json")
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["result"]["cycles"] = -1  # plausible-looking garbage
        path.write_text(json.dumps(envelope), encoding="utf-8")

        repair = PointRunner(cache_dir=tmp_path, use_cache=True)
        [recomputed] = repair.run([small_kernel_point()])
        assert repair.stats.cache_hits == 0 and repair.stats.computed == 1
        assert recomputed == fresh

        warm = PointRunner(cache_dir=tmp_path, use_cache=True)
        [served] = warm.run([small_kernel_point()])
        assert warm.stats.cache_hits == 1
        assert json.dumps(served, sort_keys=True) == \
            json.dumps(fresh, sort_keys=True)


class TestChaosFallbackCoverage:
    """PointRunner timeout and serial-fallback paths under RunnerChaos
    (injected worker crashes/timeouts through the pool seam)."""

    def chaos(self, kind, max_injections=0, seed=3):
        """A chaos injector always firing ``kind`` (0 = uncapped)."""
        from repro.faults import FaultPlan, FaultSpec, RunnerChaos

        return RunnerChaos(FaultPlan(seed=seed, specs=(
            FaultSpec(kind=kind, probability=1.0,
                      max_injections=max_injections),)))

    def test_crash_chaos_every_point_survives_via_serial_fallback(self):
        runner = PointRunner(jobs=2, use_cache=False, timeout_s=30.0,
                             retries=0)
        self.chaos("runner.crash").install(runner)
        points = [Point("selftest", {"value": v}) for v in range(4)]
        results = runner.run(points)
        assert [r["doubled"] for r in results] == [0, 2, 4, 6]
        assert runner.stats.serial_fallbacks == 4
        assert runner.stats.computed == 4
        phases = [e.phase for e in runner.tracer.by_kind("runner.point")]
        assert phases.count("serial-fallback") == 4

    def test_timeout_chaos_exercises_retry_then_fallback(self):
        runner = PointRunner(jobs=2, use_cache=False, timeout_s=0.2,
                             retries=1)
        self.chaos("runner.timeout").install(runner)
        points = [Point("selftest", {"value": v}) for v in (5, 6)]
        results = runner.run(points)
        assert [r["doubled"] for r in results] == [10, 12]
        # Every attempt times out, so each point burns its full retry
        # budget (initial + 1 retry) before the serial fallback runs it.
        assert runner.stats.timeouts == 4
        assert runner.stats.retries == 2
        assert runner.stats.serial_fallbacks == 2
        phases = [e.phase for e in runner.tracer.by_kind("runner.point")]
        assert phases.count("timeout") == 4
        assert phases.count("serial-fallback") == 2

    def test_chaos_results_bit_identical_to_chaos_free(self):
        points = [small_kernel_point(k) for k in ("copy", "search")]
        clean = PointRunner(jobs=2, use_cache=False).run(points)
        chaotic_runner = PointRunner(jobs=2, use_cache=False,
                                     timeout_s=30.0, retries=1)
        self.chaos("runner.crash").install(chaotic_runner)
        chaotic = chaotic_runner.run(points)
        assert json.dumps(clean, sort_keys=True) == \
            json.dumps(chaotic, sort_keys=True)
        assert chaotic_runner.stats.serial_fallbacks > 0

    def test_capped_chaos_recovers_pool_execution(self):
        # One injected crash, then the pool behaves: only the first
        # affected batch falls back, later batches use the pool again.
        runner = PointRunner(jobs=2, use_cache=False, timeout_s=30.0,
                             retries=0)
        self.chaos("runner.crash", max_injections=1).install(runner)
        first = runner.run([Point("selftest", {"value": 1})])
        fallbacks_after_first = runner.stats.serial_fallbacks
        second = runner.run([Point("selftest", {"value": 2})])
        assert first[0]["doubled"] == 2 and second[0]["doubled"] == 4
        assert runner.stats.serial_fallbacks == fallbacks_after_first
