"""Validation battery + self-operand (aliased) CC operation tests."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.params import small_test_machine
from repro.validate import CHECKS, run_validation


class TestValidationBattery:
    def test_all_checks_pass(self, capsys):
        assert run_validation(verbose=True)
        out = capsys.readouterr().out
        assert out.count("[PASS]") == len(CHECKS)
        assert "validation: OK" in out

    def test_quiet_mode(self, capsys):
        assert run_validation(verbose=False)
        assert capsys.readouterr().out == ""

    def test_check_inventory(self):
        names = [name for name, _ in CHECKS]
        assert len(names) == len(set(names)) == 7
        assert "backend equivalence (packed vs bit-exact)" in names

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        assert "validation: OK" in capsys.readouterr().out


class TestSelfOperandOps:
    """Operations whose operands alias the same block/row: the dual
    decoder degenerates to a single word-line activation."""

    @pytest.fixture
    def m(self, make_bytes):
        machine = ComputeCacheMachine(small_test_machine())
        a = machine.arena.alloc_page_aligned(256)
        data = make_bytes(256)
        machine.load(a, data)
        return machine, a, data

    def test_cmp_self_all_equal(self, m):
        machine, a, _ = m
        res = machine.cc(cc_ops.cc_cmp(a, a, 256))
        assert res.result == (1 << 32) - 1  # all 32 words equal

    def test_and_self_is_identity(self, m, make_bytes):
        machine, a, data = m
        c = machine.arena.alloc_page_aligned(256)
        # c must share the page offset with a for in-place execution; the
        # arena gives page offset 0 for both.
        machine.cc(cc_ops.cc_and(a, a, c, 256))
        assert machine.peek(c, 256) == data

    def test_or_self_is_identity(self, m):
        machine, a, data = m
        c = machine.arena.alloc_page_aligned(256)
        machine.cc(cc_ops.cc_or(a, a, c, 256))
        assert machine.peek(c, 256) == data

    def test_xor_self_is_zero(self, m):
        machine, a, _ = m
        c = machine.arena.alloc_page_aligned(256)
        machine.cc(cc_ops.cc_xor(a, a, c, 256))
        assert machine.peek(c, 256) == bytes(256)

    def test_xor_self_into_self_zeroes(self, m):
        """The classic ``xor r, r`` idiom at vector scale."""
        machine, a, _ = m
        machine.cc(cc_ops.cc_xor(a, a, a, 256))
        assert machine.peek(a, 256) == bytes(256)

    def test_clmul_self_parity(self, m):
        machine, a, data = m
        d = machine.arena.alloc_page_aligned(64)
        res = machine.cc(cc_ops.cc_clmul(a, a, d, 256, lane_bits=64))
        bits = int.from_bytes(res.result_bytes, "little")
        for lane in range(32):
            chunk = data[lane * 8 : (lane + 1) * 8]
            ones = sum(bin(x).count("1") for x in chunk)
            assert bool(bits >> lane & 1) == bool(ones & 1)

    def test_sources_survive_self_ops(self, m):
        machine, a, data = m
        c = machine.arena.alloc_page_aligned(256)
        machine.cc(cc_ops.cc_and(a, a, c, 256))
        machine.cc(cc_ops.cc_cmp(a, a, 256))
        assert machine.peek(a, 256) == data
