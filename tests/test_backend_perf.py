"""Performance contract of the packed fast-path backend (pytest-benchmark).

The packed backend exists to make simulation fast; this file pins the
speedup so a regression that silently falls back to per-bit circuit
evaluation fails loudly.

* At the backend layer - :meth:`ComputeSubarray.op_batch` over a 16 KB
  cc_xor's worth of row operations - packed must be **>= 5x** faster than
  bit-exact (in practice it is orders of magnitude faster).
* Machine-level end-to-end 16 KB cc_xor timings are *recorded* for both
  backends (no ratio assert there: the simulated controller's tag/LRU/
  coherence bookkeeping is backend-invariant by design and dominates the
  machine-level wall clock).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.params import BLOCK_SIZE, small_test_machine
from repro.sram.subarray import BACKENDS, ComputeSubarray

KB16 = 16 * 1024
BLOCKS = KB16 // BLOCK_SIZE  # 256 row operations = one 16 KB cc_xor
ROWS_A = list(range(BLOCKS))
ROWS_B = list(range(BLOCKS, 2 * BLOCKS))
ROWS_DEST = list(range(2 * BLOCKS, 3 * BLOCKS))


def _subarray(backend: str) -> ComputeSubarray:
    sub = ComputeSubarray(rows=3 * BLOCKS, cols=BLOCK_SIZE * 8,
                          backend=backend)
    rng = np.random.default_rng(42)
    for row in (*ROWS_A, *ROWS_B):
        sub.write_block(row, rng.integers(0, 256, BLOCK_SIZE,
                                          dtype=np.uint8).tobytes())
    return sub


def _batch(sub: ComputeSubarray):
    return sub.op_batch("xor", ROWS_A, ROWS_B, ROWS_DEST)


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_packed_5x_faster_at_backend_layer():
    """The headline ratio: 16 KB of xor row ops, packed vs bit-exact."""
    subs = {be: _subarray(be) for be in BACKENDS}
    # Warm up and check the backends agree before timing them.
    results = {be: _batch(sub) for be, sub in subs.items()}
    assert results["bitexact"] == results["packed"]
    t_bitexact = _best_of(lambda: _batch(subs["bitexact"]))
    t_packed = _best_of(lambda: _batch(subs["packed"]))
    ratio = t_bitexact / t_packed
    print(f"\nop_batch 16KB xor: bitexact {t_bitexact * 1e3:.2f} ms, "
          f"packed {t_packed * 1e3:.2f} ms, speedup {ratio:.1f}x")
    assert ratio >= 5.0, (
        f"packed backend only {ratio:.1f}x faster than bit-exact "
        f"({t_packed * 1e3:.2f} ms vs {t_bitexact * 1e3:.2f} ms)"
    )
    # Timing must not have perturbed the accounting: same op counts,
    # same energy, on both backends.
    sa, sp = subs["bitexact"].stats, subs["packed"].stats
    assert sa.compute_ops == sp.compute_ops
    assert sa.energy_pj == sp.energy_pj
    assert sa.busy_cycles == sp.busy_cycles


@pytest.mark.parametrize("backend", BACKENDS)
def test_benchmark_opbatch_16kb_xor(benchmark, backend):
    """Record the backend-layer batch time for both backends."""
    sub = _subarray(backend)
    benchmark(_batch, sub)


@pytest.mark.parametrize("backend", BACKENDS)
def test_benchmark_machine_16kb_cc_xor(benchmark, backend):
    """Record the end-to-end machine time for both backends (no ratio
    assert: controller bookkeeping dominates and is backend-invariant)."""
    m = ComputeCacheMachine(small_test_machine(), backend=backend)
    a, b, c = m.arena.alloc_colocated(KB16, 3)
    rng = np.random.default_rng(7)
    m.load(a, rng.integers(0, 256, KB16, dtype=np.uint8).tobytes())
    m.load(b, rng.integers(0, 256, KB16, dtype=np.uint8).tobytes())
    instr = cc_ops.cc_xor(a, b, c, KB16)
    result = benchmark.pedantic(lambda: m.cc(instr), rounds=3,
                                warmup_rounds=1, iterations=1)
    assert result.result_bytes == b"" and result.pieces == KB16 // 4096
