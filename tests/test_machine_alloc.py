"""Machine facade and arena allocator tests."""

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.alloc import Arena
from repro.cache.locality import check_operand_locality
from repro.errors import AddressError
from repro.params import PAGE_SIZE, sandybridge_8core


class TestArena:
    def test_block_alignment_default(self):
        arena = Arena(1 << 20)
        addr = arena.alloc(100)
        assert addr % 64 == 0

    def test_page_aligned(self):
        arena = Arena(1 << 20)
        arena.alloc(100)
        addr = arena.alloc_page_aligned(100)
        assert addr % PAGE_SIZE == 0

    def test_colocated_share_offset(self):
        arena = Arena(1 << 20)
        addrs = arena.alloc_colocated(6000, 3)
        assert len({a % PAGE_SIZE for a in addrs}) == 1
        # And they do not overlap.
        spans = sorted((a, a + 6000) for a in addrs)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_colocated_satisfy_all_levels(self):
        cfg = sandybridge_8core()
        arena = Arena(1 << 22)
        addrs = arena.alloc_colocated(4096, 3)
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            assert check_operand_locality(addrs, level)

    def test_exhaustion(self):
        arena = Arena(PAGE_SIZE)
        with pytest.raises(AddressError):
            arena.alloc(2 * PAGE_SIZE)

    def test_bad_args(self):
        arena = Arena(1 << 20)
        with pytest.raises(AddressError):
            arena.alloc(0)
        with pytest.raises(AddressError):
            arena.alloc(64, align=100)
        with pytest.raises(AddressError):
            arena.alloc_colocated(64, 0)

    def test_usage_tracking(self):
        arena = Arena(1 << 20)
        arena.alloc(128)
        assert arena.used >= 128
        assert arena.remaining <= (1 << 20) - 128

    def test_superpage_colocated_groups(self):
        """Section IV-C: within a superpage, 12-bit alignment suffices."""
        arena = Arena(8 << 20)
        sp = arena.alloc_superpage(2 << 20)
        addrs = sp.alloc_colocated(4096, 3)
        cfg = sandybridge_8core()
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            assert check_operand_locality(addrs, level)
        # All inside the one superpage.
        for addr in addrs:
            assert sp.base <= addr < sp.base + (2 << 20)

    def test_superpage_overflow_rejected(self):
        arena = Arena(8 << 20)
        sp = arena.alloc_superpage(16 * PAGE_SIZE)
        with pytest.raises(AddressError):
            sp.alloc_colocated(PAGE_SIZE, 32)

    def test_superpage_size_validation(self):
        arena = Arena(1 << 20)
        with pytest.raises(AddressError):
            arena.alloc_superpage(5000)


class TestMachineFacade:
    def test_load_peek_round_trip(self, machine, make_bytes):
        addr = machine.arena.alloc(256)
        data = make_bytes(256)
        machine.load(addr, data)
        assert machine.peek(addr, 256) == data

    def test_load_into_cached_block_rejected(self, machine, make_bytes):
        addr = machine.arena.alloc(64)
        machine.load(addr, make_bytes(64))
        machine.read(addr, 8)  # now cached
        with pytest.raises(AddressError):
            machine.load(addr, make_bytes(64))

    def test_write_read_through_caches(self, machine, make_bytes):
        addr = machine.arena.alloc(64)
        data = make_bytes(32)
        machine.write(addr, data)
        assert machine.read(addr, 32) == data

    def test_energy_snapshot_delta(self, machine, make_bytes):
        addr = machine.arena.alloc(64)
        machine.load(addr, make_bytes(64))
        snap = machine.snapshot_energy()
        machine.read(addr, 8)
        delta = machine.energy_since(snap)
        assert delta.total() > 0
        assert machine.ledger.total() >= delta.total()

    def test_total_energy_includes_static(self, machine):
        total = machine.total_energy(machine.snapshot_energy(), cycles=10_000)
        assert total.core_static > 0
        assert total.uncore_static > 0

    def test_touch_and_warm(self, machine, make_bytes):
        addr = machine.arena.alloc_page_aligned(256)
        machine.load(addr, make_bytes(256))
        machine.touch_range(addr, 256)
        assert machine.hierarchy.l1[0].contains(addr)
        machine.warm_l3(addr, 256)
        assert not machine.hierarchy.l1[0].contains(addr)
        slice_id = machine.hierarchy.home_slice(addr, 0)
        assert machine.hierarchy.l3[slice_id].contains(addr)

    def test_quickstart_docstring_example(self):
        """The module-docstring example must actually work."""
        m = ComputeCacheMachine()
        a, b, c = m.arena.alloc_colocated(4096, 3)
        m.load(a, bytes(4096))
        m.load(b, b"\xff" * 4096)
        res = m.cc(cc_ops.cc_or(a, b, c, 4096))
        assert res.used_inplace
        assert m.peek(c, 4096) == b"\xff" * 4096

    def test_multi_core_controllers_independent(self, machine, make_bytes):
        a0, c0 = machine.arena.alloc_colocated(128, 2)
        machine.load(a0, make_bytes(128))
        res0 = machine.cc(cc_ops.cc_copy(a0, c0, 128), core=0)
        res1 = machine.cc(cc_ops.cc_copy(a0, c0, 128), core=1)
        assert res0.cycles > 0 and res1.cycles > 0
        assert machine.controllers[0].stats.instructions == 1
        assert machine.controllers[1].stats.instructions == 1
