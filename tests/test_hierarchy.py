"""Coherent hierarchy tests: MESI transitions, inclusion, writebacks."""

import pytest

from repro.cache.block import MESIState
from repro.cache.hierarchy import L1, L2, L3, CacheHierarchy
from repro.energy.accounting import EnergyLedger
from repro.params import small_test_machine


@pytest.fixture
def hier(small_config):
    return CacheHierarchy(small_config, EnergyLedger())


class TestBasicAccess:
    def test_read_returns_memory_contents(self, hier, make_bytes):
        data = make_bytes(64)
        hier.memory.load(0x1000, data)
        out, latency = hier.read(0, 0x1000, 64)
        assert out == data
        assert latency > hier.config.l1d.hit_latency  # cold miss

    def test_second_read_hits_l1(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 64)
        _, latency = hier.read(0, 0x1000, 8)
        assert latency == hier.config.l1d.hit_latency

    def test_write_then_read(self, hier, make_bytes):
        data = make_bytes(32)
        hier.write(0, 0x2000, data)
        out, _ = hier.read(0, 0x2000, 32)
        assert out == data

    def test_partial_write_preserves_rest(self, hier, make_bytes):
        block = make_bytes(64)
        hier.memory.load(0x1000, block)
        hier.write(0, 0x1010, b"\xAA" * 4)
        out, _ = hier.read(0, 0x1000, 64)
        assert out == block[:0x10] + b"\xAA" * 4 + block[0x14:]

    def test_cross_block_access(self, hier, make_bytes):
        data = make_bytes(200)
        hier.memory.load(0x1020, data)
        out, _ = hier.read(0, 0x1020, 200)
        assert out == data


class TestMESITransitions:
    def test_read_grants_exclusive_when_sole(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)
        assert hier.l1[0].state_of(0x1000) is MESIState.EXCLUSIVE

    def test_second_reader_shares(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)
        hier.read(1, 0x1000, 8)
        assert hier.l1[0].state_of(0x1000) is MESIState.SHARED
        assert hier.l1[1].state_of(0x1000) is MESIState.SHARED

    def test_write_invalidates_sharers(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)
        hier.read(1, 0x1000, 8)
        hier.write(1, 0x1000, b"\x11" * 8)
        assert hier.l1[0].state_of(0x1000) is MESIState.INVALID
        assert hier.l1[1].state_of(0x1000) is MESIState.MODIFIED

    def test_dirty_data_forwarded_to_reader(self, hier):
        hier.memory.load(0x1000, bytes(64))
        hier.write(0, 0x1000, b"\x55" * 64)
        out, _ = hier.read(1, 0x1000, 64)
        assert out == b"\x55" * 64
        # Writer downgraded to shared.
        assert hier.l1[0].state_of(0x1000) in (MESIState.SHARED, MESIState.INVALID)

    def test_write_after_write_other_core(self, hier):
        hier.memory.load(0x1000, bytes(64))
        hier.write(0, 0x1000, b"\x01" * 8)
        hier.write(1, 0x1008, b"\x02" * 8)
        out, _ = hier.read(0, 0x1000, 16)
        assert out == b"\x01" * 8 + b"\x02" * 8

    def test_silent_e_to_m(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)  # E
        ring_msgs = hier.ring.stats.control_messages
        hier.write(0, 0x1000, b"\x99" * 8)  # E->M needs no directory trip
        assert hier.ring.stats.control_messages == ring_msgs


class TestInclusionAndWriteback:
    def test_invariants_after_traffic(self, hier, rng):
        for i in range(200):
            core = int(rng.integers(0, hier.config.cores))
            addr = int(rng.integers(0, 512)) * 64
            if rng.random() < 0.5:
                hier.read(core, addr, 8)
            else:
                hier.write(core, addr, bytes([i & 0xFF]) * 8)
        hier.check_inclusion()
        hier.check_single_writer()

    def test_l1_capacity_eviction_writes_back(self, hier):
        """Dirty L1 victims land in L2 with their data."""
        cfg = hier.config.l1d
        stride = cfg.sets * cfg.block_size
        addrs = [i * stride for i in range(cfg.ways + 1)]
        for i, addr in enumerate(addrs):
            hier.write(0, addr, bytes([i]) * 64)
        # First block evicted from L1; its data must be in L2.
        assert not hier.l1[0].contains(addrs[0])
        assert hier.l2[0].contains(addrs[0])
        assert hier.l2[0].peek_block(addrs[0]) == bytes([0]) * 64

    def test_data_survives_full_eviction_chain(self, hier, rng):
        """Write enough conflicting blocks to force L2/L3 evictions; every
        value must still be readable (through caches or memory)."""
        values = {}
        # Overflow the small L3 slice associativity chain.
        for i in range(256):
            addr = (i * 64 * 173) % hier.config.memory_size
            addr &= ~63
            values[addr] = bytes([i & 0xFF]) * 64
            hier.write(0, addr, values[addr])
        for addr, expected in values.items():
            out, _ = hier.read(0, addr, 64)
            assert out == expected, hex(addr)


class TestCCPrepare:
    def test_prepare_l3_fetches_from_memory(self, hier, make_bytes):
        data = make_bytes(64)
        hier.memory.load(0x3000, data)
        latency = hier.cc_prepare(0, L3, 0x3000, is_dest=False)
        assert latency >= hier.config.memory.latency
        slice_id = hier.home_slice(0x3000, 0)
        assert hier.l3[slice_id].contains(0x3000)
        assert hier.l3[slice_id].peek_block(0x3000) == data

    def test_prepare_l3_writes_back_dirty_private(self, hier):
        hier.memory.load(0x3000, bytes(64))
        hier.write(0, 0x3000, b"\x77" * 64)  # dirty in L1
        hier.cc_prepare(0, L3, 0x3000, is_dest=False)
        slice_id = hier.home_slice(0x3000, 0)
        assert hier.l3[slice_id].peek_block(0x3000) == b"\x77" * 64
        # Source operands stay shared above (writeback, not invalidate).
        assert hier.l1[0].state_of(0x3000) in (MESIState.SHARED, MESIState.INVALID)

    def test_prepare_l3_dest_invalidates_private(self, hier):
        hier.memory.load(0x3000, bytes(64))
        hier.read(0, 0x3000, 8)
        hier.cc_prepare(0, L3, 0x3000, is_dest=True)
        assert hier.l1[0].state_of(0x3000) is MESIState.INVALID
        assert hier.l2[0].state_of(0x3000) is MESIState.INVALID
        slice_id = hier.home_slice(0x3000, 0)
        assert hier.l3[slice_id].state_of(0x3000) is MESIState.MODIFIED

    def test_prepare_dest_skip_fetch(self, hier):
        reads_before = hier.memory.block_reads
        hier.cc_prepare(0, L3, 0x4000, is_dest=True, skip_fetch=True)
        assert hier.memory.block_reads == reads_before  # no fetch
        slice_id = hier.home_slice(0x4000, 0)
        assert hier.l3[slice_id].contains(0x4000)

    def test_prepare_l1_brings_block_in(self, hier, make_bytes):
        data = make_bytes(64)
        hier.memory.load(0x5000, data)
        hier.cc_prepare(0, L1, 0x5000, is_dest=False)
        assert hier.l1[0].contains(0x5000)

    def test_prepare_l2_flushes_l1(self, hier):
        hier.memory.load(0x5000, bytes(64))
        hier.write(0, 0x5000, b"\x42" * 64)  # dirty in L1
        hier.cc_prepare(0, L2, 0x5000, is_dest=False)
        assert not hier.l1[0].contains(0x5000)
        assert hier.l2[0].peek_block(0x5000) == b"\x42" * 64

    def test_probe_residency(self, hier, make_bytes):
        hier.memory.load(0x6000, make_bytes(64))
        hier.read(0, 0x6000, 8)
        res = hier.probe_residency(0, [0x6000])
        assert res == {L1: True, L2: True, L3: True}
        res2 = hier.probe_residency(0, [0x6000, 0x7000])
        assert res2[L1] is False


class TestCoherentPeek:
    def test_peek_sees_dirty_l1(self, hier):
        hier.memory.load(0x1000, bytes(64))
        hier.write(0, 0x1000, b"\xAB" * 8)
        assert hier.coherent_peek(0x1000, 8) == b"\xAB" * 8

    def test_peek_falls_back_to_memory(self, hier, make_bytes):
        data = make_bytes(64)
        hier.memory.load(0x8000, data)
        assert hier.coherent_peek(0x8000, 64) == data

    def test_peek_charges_nothing(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)
        before = hier.ledger.total()
        hier.coherent_peek(0x1000, 64)
        assert hier.ledger.total() == before


class TestNUCAPlacement:
    def test_first_touch_placement(self, small_config):
        hier = CacheHierarchy(small_config, EnergyLedger())
        hier.memory.load(0x1000, bytes(64))
        hier.read(1, 0x1000, 8)  # core 1 touches first
        assert hier.home_slice(0x1000) == 1 % small_config.l3_slices

    def test_explicit_placement(self, hier):
        hier.place_page(0x0, 1)
        assert hier.home_slice(0x40) == 1
