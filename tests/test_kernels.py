"""Unit and property tests for :mod:`repro.kernels` (packed fast path).

The packed kernels are the computational core of the fast-path backend;
each is checked against a straightforward Python/numpy reference and
against the bit-exact helpers in :mod:`repro.bitops`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitops import bytes_to_bits, word_equality_mask, xor_reduce_lanes
from repro.errors import AddressError
from repro.kernels import (
    POPCOUNT8,
    PackedCellArray,
    clmul_mask,
    equality_mask,
    logical_rows,
    pack_flags,
    search_mask,
)

rows_st = st.integers(1, 4)
row_bytes = 64


def _rand_rows(seed, n):
    return np.random.default_rng(seed).integers(
        0, 256, (n, row_bytes), dtype=np.uint8)


class TestPopcount8:
    def test_table(self):
        assert POPCOUNT8.shape == (256,)
        for v in (0, 1, 3, 0x0F, 0xFF, 0xAA):
            assert POPCOUNT8[v] == bin(v).count("1")


class TestLogicalRows:
    @given(st.integers(0, 2**32 - 1), rows_st,
           st.sampled_from(["and", "or", "xor", "nor"]))
    def test_binary_ops(self, seed, n, op):
        a, b = _rand_rows(seed, n), _rand_rows(seed + 1, n)
        out = logical_rows(op, a, b)
        ref = {
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
            "nor": ~(a | b) & 0xFF,
        }[op]
        assert (out == ref).all()

    @given(st.integers(0, 2**32 - 1), rows_st)
    def test_unary_ops(self, seed, n):
        a = _rand_rows(seed, n)
        assert (logical_rows("not", a) == (~a & 0xFF)).all()
        assert (logical_rows("copy", a) == a).all()
        assert not logical_rows("buz", a).any()

    def test_copy_is_a_copy(self):
        a = _rand_rows(0, 1)
        out = logical_rows("copy", a)
        out[0, 0] ^= 0xFF
        assert (logical_rows("copy", a) == a).all()

    def test_one_dim_operands(self):
        a = np.array([0xF0, 0x0F], dtype=np.uint8)
        b = np.array([0xFF, 0x00], dtype=np.uint8)
        assert logical_rows("and", a, b).tolist() == [[0xF0, 0x00]]

    def test_unknown_op_rejected(self):
        with pytest.raises(AddressError):
            logical_rows("nand", _rand_rows(0, 1), _rand_rows(1, 1))

    def test_missing_operand_rejected(self):
        with pytest.raises(AddressError):
            logical_rows("and", _rand_rows(0, 1))


class TestPackFlags:
    def test_chunk0_is_bit0(self):
        flags = np.zeros(64, dtype=bool)
        flags[0] = True
        assert pack_flags(flags)[0] == 1
        flags = np.zeros(64, dtype=bool)
        flags[63] = True
        assert pack_flags(flags)[0] == 1 << 63

    def test_short_rows_zero_padded(self):
        assert pack_flags(np.array([True, False, True]))[0] == 0b101

    def test_multi_row(self):
        flags = np.array([[True, False], [False, True]])
        assert pack_flags(flags).tolist() == [1, 2]

    def test_too_wide_rejected(self):
        with pytest.raises(AddressError):
            pack_flags(np.zeros(65, dtype=bool))


class TestEqualityMask:
    @given(st.integers(0, 2**32 - 1), rows_st, st.sampled_from([8, 16, 64]))
    def test_matches_bitexact_reference(self, seed, n, chunk_bytes):
        a, b = _rand_rows(seed, n), _rand_rows(seed + 1, n)
        # plant equal chunks so the mask is not trivially 0
        b[:, :chunk_bytes] = a[:, :chunk_bytes]
        masks = equality_mask(a, b, chunk_bytes)
        for r in range(n):
            xor = bytes_to_bits((a[r] ^ b[r]).tobytes())
            assert masks[r] == word_equality_mask(xor, chunk_bytes * 8)

    def test_bad_chunk_rejected(self):
        with pytest.raises(AddressError):
            equality_mask(_rand_rows(0, 1), _rand_rows(1, 1), 7)


class TestSearchMask:
    def test_broadcast_key(self):
        data = _rand_rows(3, 4)
        key = data[2].copy()
        mask = search_mask(data, key)
        assert mask.tolist() == [0, 0, 1, 0]


class TestClmulMask:
    @given(st.integers(0, 2**32 - 1), rows_st, st.sampled_from([64, 128, 256]))
    def test_matches_bitexact_reference(self, seed, n, lane_bits):
        a, b = _rand_rows(seed, n), _rand_rows(seed + 1, n)
        masks = clmul_mask(a, b, lane_bits)
        for r in range(n):
            lanes = xor_reduce_lanes(bytes_to_bits((a[r] & b[r]).tobytes()),
                                     lane_bits)
            assert masks[r] == pack_flags(lanes)[0]

    def test_bad_lane_rejected(self):
        with pytest.raises(AddressError):
            clmul_mask(_rand_rows(0, 1), _rand_rows(1, 1), 24)


class TestPackedCellArray:
    def test_byte_round_trip(self):
        arr = PackedCellArray(4, 512)
        data = bytes(range(64))
        arr.write_row_bytes(2, data)
        assert arr.read_row_bytes(2) == data
        assert arr.read_row_bytes(0) == bytes(64)

    def test_bit_compat_round_trip(self):
        """The bit-level compat surface must agree with the packed bytes
        (MSB-first bit order, matching BitCellArray)."""
        arr = PackedCellArray(2, 16)
        arr.write_row_bytes(0, b"\x80\x01")
        bits = arr.read_row(0)
        assert bits[0] and bits[15] and bits[1:15].sum() == 0
        arr.write_row(1, bits)
        assert arr.read_row_bytes(1) == b"\x80\x01"

    def test_snapshot_shape(self):
        arr = PackedCellArray(3, 64)
        arr.write_row_bytes(1, b"\xff" * 8)
        snap = arr.snapshot()
        assert snap.shape == (3, 64)
        assert snap[1].all() and not snap[0].any()

    def test_row_bounds_checked(self):
        arr = PackedCellArray(2, 64)
        with pytest.raises(AddressError):
            arr.read_row_bytes(2)
        with pytest.raises(AddressError):
            arr.write_row_bytes(-1, bytes(8))

    def test_bulk_read_write(self):
        arr = PackedCellArray(4, 64)
        values = _rand_rows(9, 2)[:, :8]
        arr.write_rows([1, 3], values)
        assert (arr.read_rows([3, 1]) == values[::-1]).all()
