"""Energy ledger, power model, and charge-function tests."""

import pytest

from repro.energy.accounting import Component, EnergyLedger
from repro.energy.mcpat import (
    PowerModel,
    charge_cache_read,
    charge_cache_write,
    charge_cc_op,
    charge_key_broadcast,
    charge_key_row_write,
    charge_nearplace_op,
)
from repro.energy.tables import (
    CACHE_IC_ENERGY_PJ,
    cc_op_energy,
    htree_fraction,
    read_energy,
    write_energy,
)
from repro.errors import ConfigError, ISAError
from repro.params import sandybridge_8core


class TestLedger:
    def test_add_and_total(self):
        ledger = EnergyLedger()
        ledger.add(Component.CORE, 100.0)
        ledger.add(Component.CORE, 50.0)
        ledger.add(Component.L3_IC, 25.0)
        assert ledger.total() == 175.0
        assert ledger.core() == 150.0
        assert ledger.total_nj() == pytest.approx(0.175)

    def test_groupings(self):
        ledger = EnergyLedger()
        ledger.add(Component.L1_ACCESS, 1.0)
        ledger.add(Component.L2_ACCESS, 2.0)
        ledger.add(Component.L3_IC, 4.0)
        ledger.add(Component.NOC, 8.0)
        assert ledger.cache_access() == 3.0
        assert ledger.cache_ic() == 4.0
        assert ledger.noc() == 8.0
        assert ledger.data_movement() == 15.0
        assert ledger.breakdown() == {
            "core": 0.0, "cache-access": 3.0, "cache-ic": 4.0, "noc": 8.0
        }

    def test_diff_and_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add(Component.CORE, 10.0)
        b.add(Component.CORE, 25.0)
        b.add(Component.NOC, 5.0)
        diff = a.diff(b)
        assert diff[Component.CORE] == 15.0
        assert diff[Component.NOC] == 5.0
        a.merge(b)
        assert a.core() == 35.0

    def test_copy_is_independent(self):
        a = EnergyLedger()
        a.add(Component.CORE, 1.0)
        b = a.copy()
        b.add(Component.CORE, 1.0)
        assert a.core() == 1.0 and b.core() == 2.0

    def test_component_for_level(self):
        assert Component.for_level("L1-D") == ("l1-access", "l1-ic")
        assert Component.for_level("L3-slice") == ("l3-access", "l3-ic")
        with pytest.raises(KeyError):
            Component.for_level("L4")


class TestTables:
    def test_read_write_lookups(self):
        assert read_energy("L3-slice") == 2452.0
        assert write_energy("L1-D") == 375.0
        with pytest.raises(ConfigError):
            read_energy("L9")

    def test_cc_op_column_mapping(self):
        assert cc_op_energy("L3-slice", "buz") == cc_op_energy("L3-slice", "copy")
        assert cc_op_energy("L2", "xor") == cc_op_energy("L2", "or")
        assert cc_op_energy("L1-D", "clmul") == cc_op_energy("L1-D", "cmp")
        with pytest.raises(ISAError):
            cc_op_energy("L2", "div")

    def test_htree_fraction(self):
        assert htree_fraction("L3-slice") == pytest.approx(1985 / 2452)


class TestChargeFunctions:
    def test_read_split_sums_to_table5(self):
        ledger = EnergyLedger()
        charge_cache_read(ledger, "L2")
        assert ledger.total() == pytest.approx(read_energy("L2"))
        assert ledger.get(Component.L2_IC) > ledger.get(Component.L2_ACCESS)

    def test_write_split_sums_to_table5(self):
        ledger = EnergyLedger()
        charge_cache_write(ledger, "L3-slice")
        assert ledger.total() == pytest.approx(write_energy("L3-slice"))

    def test_l1i_maps_to_l1_components(self):
        ledger = EnergyLedger()
        charge_cache_read(ledger, "L1-I")
        assert ledger.get(Component.L1_ACCESS) > 0

    def test_cc_op_has_no_ic_component(self):
        """In-place ops never traverse the H-tree."""
        ledger = EnergyLedger()
        charge_cc_op(ledger, "L3-slice", "and")
        assert ledger.cache_ic() == 0.0
        assert ledger.total() == pytest.approx(cc_op_energy("L3-slice", "and"))

    def test_nearplace_pays_htree(self):
        ledger = EnergyLedger()
        charge_nearplace_op(ledger, "L3-slice", "xor")
        assert ledger.cache_ic() > 0
        # 2 reads + 1 write, all conventional.
        assert ledger.total() == pytest.approx(
            2 * read_energy("L3-slice") + write_energy("L3-slice")
        )

    def test_key_broadcast_plus_row_writes(self):
        """Broadcast wire energy once + array-only writes per partition is
        cheaper than N full writes but costlier than one."""
        ledger = EnergyLedger()
        charge_key_broadcast(ledger, "L3-slice")
        for _ in range(16):
            charge_key_row_write(ledger, "L3-slice")
        total = ledger.total()
        assert write_energy("L3-slice") < total < 16 * write_energy("L3-slice")
        assert ledger.get(Component.L3_IC) == pytest.approx(
            2 * CACHE_IC_ENERGY_PJ["L3-slice"]
        )


class TestPowerModel:
    def test_static_scales_with_time(self):
        cfg = sandybridge_8core()
        model = PowerModel(cfg, active_cores=1)
        ledger = EnergyLedger()
        short = model.total_energy(ledger, cycles=1000)
        long = model.total_energy(ledger, cycles=2000)
        assert long.core_static == pytest.approx(2 * short.core_static)
        assert long.uncore_static == pytest.approx(2 * short.uncore_static)

    def test_active_cores_scale_core_static(self):
        cfg = sandybridge_8core()
        one = PowerModel(cfg, active_cores=1).total_energy(EnergyLedger(), 1000)
        eight = PowerModel(cfg, active_cores=8).total_energy(EnergyLedger(), 1000)
        assert eight.core_static == pytest.approx(8 * one.core_static)
        assert eight.uncore_static == pytest.approx(one.uncore_static)

    def test_dynamic_split(self):
        cfg = sandybridge_8core()
        ledger = EnergyLedger()
        ledger.add(Component.CORE, 5000.0)
        ledger.add(Component.L3_ACCESS, 3000.0)
        total = PowerModel(cfg).total_energy(ledger, 0)
        assert total.core_dynamic == pytest.approx(5.0)
        assert total.uncore_dynamic == pytest.approx(3.0)
        assert total.as_dict()["core-dynamic"] == pytest.approx(5.0)

    def test_static_power_watts(self):
        cfg = sandybridge_8core()
        watts = PowerModel(cfg, active_cores=2).static_power_watts()
        assert watts == pytest.approx((2 * 450 + 1400) / 1000)
