"""Property tests: assembler round-trips over generated instructions, and
ring-topology metric laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import format_instruction, parse
from repro.cache.ring import RingInterconnect
from repro.core.isa import CCInstruction, Opcode
from repro.params import RingConfig

BLOCK = 64
addr_st = st.integers(0, 1 << 20).map(lambda v: v * BLOCK)
blocks_st = st.integers(1, 8)


@st.composite
def instructions(draw) -> CCInstruction:
    opcode = draw(st.sampled_from(list(Opcode)))
    size = draw(blocks_st) * BLOCK
    src1 = draw(addr_st)
    if opcode is Opcode.BUZ:
        return CCInstruction(opcode, src1=src1, size=size)
    if opcode in (Opcode.COPY, Opcode.NOT):
        return CCInstruction(opcode, src1=src1, dest=draw(addr_st), size=size)
    if opcode is Opcode.CMP:
        return CCInstruction(opcode, src1=src1, src2=draw(addr_st), size=size)
    if opcode is Opcode.SEARCH:
        return CCInstruction(opcode, src1=src1, src2=draw(addr_st), size=size)
    if opcode is Opcode.CLMUL:
        return CCInstruction(
            opcode, src1=src1, src2=draw(addr_st), dest=draw(addr_st),
            size=size, lane_bits=draw(st.sampled_from([64, 128, 256])),
            broadcast_src2=draw(st.booleans()),
        )
    if opcode is Opcode.REDUCE:
        return CCInstruction(opcode, src1=src1, size=size,
                             elem_bits=draw(st.sampled_from([8, 16, 32])))
    if opcode in (Opcode.ADD, Opcode.MUL):
        return CCInstruction(opcode, src1=src1, src2=draw(addr_st),
                             dest=draw(addr_st), size=size,
                             elem_bits=draw(st.sampled_from([8, 16, 32])))
    return CCInstruction(opcode, src1=src1, src2=draw(addr_st),
                         dest=draw(addr_st), size=size)


class TestAssemblerProperty:
    @given(instructions())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_any_valid_instruction(self, instr):
        assert parse(format_instruction(instr)) == instr

    @given(instructions())
    @settings(max_examples=60, deadline=None)
    def test_formatting_is_single_line(self, instr):
        text = format_instruction(instr)
        assert "\n" not in text
        assert text.startswith("cc_")


class TestRingMetricProperties:
    @given(st.integers(1, 32), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=80, deadline=None)
    def test_hops_symmetric_and_bounded(self, stops, a, b):
        ring = RingInterconnect(RingConfig(stops=stops))
        a %= stops
        b %= stops
        assert ring.hops(a, b) == ring.hops(b, a)
        assert 0 <= ring.hops(a, b) <= stops // 2
        assert ring.hops(a, a) == 0

    @given(st.integers(2, 16), st.integers(0, 63), st.integers(0, 63),
           st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, stops, a, b, c):
        ring = RingInterconnect(RingConfig(stops=stops))
        a, b, c = a % stops, b % stops, c % stops
        assert ring.hops(a, c) <= ring.hops(a, b) + ring.hops(b, c)

    @given(st.integers(1, 16), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_energy_proportional_to_hops(self, stops, a, b):
        cfg = RingConfig(stops=stops)
        ring = RingInterconnect(cfg)
        a, b = a % stops, b % stops
        expected = ring.hops(a, b) * cfg.flits_per_block * cfg.energy_per_hop_per_flit
        assert ring.block_transfer_energy(a, b) == pytest.approx(expected)
