"""Additional hierarchy behaviors: back-invalidation, directory cleanup,
upgrade paths, partial-block semantics, ring accounting."""

import pytest

from repro.cache.block import MESIState
from repro.cache.hierarchy import CacheHierarchy
from repro.energy.accounting import EnergyLedger
from repro.errors import AddressError
from repro.params import small_test_machine


@pytest.fixture
def hier(small_config):
    return CacheHierarchy(small_config, EnergyLedger())


class TestL3BackInvalidation:
    def _thrash_slice(self, hier, victim, core=0, extra=0):
        """Force the victim's L3 set to overflow."""
        cfg = hier.config.l3_slice
        stride = cfg.sets * cfg.block_size
        slice_id = hier.home_slice(victim, core)
        n = cfg.ways + 1 + extra
        for i in range(1, n + 1):
            addr = victim + i * stride
            if addr + 64 > hier.config.memory_size:
                break
            hier.place_page(addr, slice_id)
            hier.read(core, addr, 8)

    def test_l3_eviction_invalidates_private_copies(self, hier, make_bytes):
        victim = 0x0
        hier.memory.load(victim, make_bytes(64))
        hier.read(0, victim, 8)  # in L1/L2/L3
        self._thrash_slice(hier, victim)
        slice_id = hier.home_slice(victim, 0)
        if not hier.l3[slice_id].contains(victim):
            # Inclusion: the private copies must be gone too.
            assert not hier.l1[0].contains(victim)
            assert not hier.l2[0].contains(victim)
        hier.check_inclusion()

    def test_l3_eviction_flushes_dirty_private_to_memory(self, hier):
        victim = 0x0
        hier.memory.load(victim, bytes(64))
        hier.write(0, victim, b"\xEE" * 64)  # dirty only in L1
        self._thrash_slice(hier, victim)
        slice_id = hier.home_slice(victim, 0)
        if not hier.l3[slice_id].contains(victim):
            assert hier.memory.peek(victim, 64) == b"\xEE" * 64
        # Either way, the architectural value is preserved.
        assert hier.coherent_peek(victim, 64) == b"\xEE" * 64


class TestDirectoryHygiene:
    def test_write_clears_other_sharer_entries(self, hier, make_bytes):
        hier.memory.load(0x1000, make_bytes(64))
        hier.read(0, 0x1000, 8)
        hier.read(1, 0x1000, 8)
        hier.write(0, 0x1000, b"\x01" * 8)
        slice_id = hier.home_slice(0x1000, 0)
        entry = hier.directory[slice_id].peek(0x1000)
        assert entry is not None
        assert entry.sharers == {0}
        assert entry.owner == 0

    def test_read_after_recall_shares(self, hier):
        hier.memory.load(0x1000, bytes(64))
        hier.write(0, 0x1000, b"\x11" * 8)
        hier.read(1, 0x1000, 8)
        slice_id = hier.home_slice(0x1000, 0)
        entry = hier.directory[slice_id].peek(0x1000)
        assert entry.sharers == {0, 1}
        assert entry.owner is None

    def test_dirty_recall_updates_l3_data(self, hier):
        hier.memory.load(0x1000, bytes(64))
        hier.write(0, 0x1000, b"\x22" * 64)
        hier.read(1, 0x1000, 64)  # recall forces writeback into L3
        slice_id = hier.home_slice(0x1000, 0)
        assert hier.l3[slice_id].peek_block(0x1000) == b"\x22" * 64
        assert hier.l3[slice_id].state_of(0x1000) is MESIState.MODIFIED


class TestUpgradePaths:
    def test_shared_to_modified_upgrade(self, hier, make_bytes):
        hier.memory.load(0x2000, make_bytes(64))
        hier.read(0, 0x2000, 8)
        hier.read(1, 0x2000, 8)  # both S
        hier.write(0, 0x2000, b"\x33" * 8)  # S->M upgrade via directory
        assert hier.l1[0].state_of(0x2000) is MESIState.MODIFIED
        assert hier.l1[1].state_of(0x2000) is MESIState.INVALID
        hier.check_single_writer()

    def test_l2_hit_write_after_l1_eviction(self, hier, make_bytes):
        """Block evicted from L1 but present in L2: a write refills L1
        with write permission."""
        cfg = hier.config.l1d
        stride = cfg.sets * cfg.block_size
        target = 0x0
        hier.read(0, target, 8)
        for i in range(1, cfg.ways + 1):  # evict target from L1 only
            hier.read(0, target + i * stride, 8)
        if not hier.l1[0].contains(target) and hier.l2[0].contains(target):
            hier.write(0, target, b"\x44" * 8)
            assert hier.l1[0].state_of(target) is MESIState.MODIFIED
            assert hier.coherent_peek(target, 8) == b"\x44" * 8


class TestByteGranularity:
    def test_single_byte_write(self, hier, make_bytes):
        block = make_bytes(64)
        hier.memory.load(0x3000, block)
        hier.write(0, 0x3007, b"\x99")
        expected = block[:7] + b"\x99" + block[8:]
        out, _ = hier.read(0, 0x3000, 64)
        assert out == expected

    def test_write_spanning_three_blocks(self, hier, make_bytes):
        data = make_bytes(150)
        hier.write(0, 0x3020, data)
        assert hier.coherent_peek(0x3020, 150) == data

    def test_zero_size_operations(self, hier):
        assert hier.read(0, 0x0, 0) == (b"", 0)
        assert hier.write(0, 0x0, b"") == 0

    def test_out_of_range_rejected(self, hier):
        with pytest.raises(AddressError):
            hier.read(0, hier.config.memory_size, 8)


class TestRingAccounting:
    def test_cross_core_traffic_counts_hops(self, hier, make_bytes):
        if hier.config.l3_slices < 2:
            pytest.skip("needs two slices")
        hier.memory.load(0x4000, make_bytes(64))
        hier.read(1, 0x4000, 8)   # homed at slice 1 (first touch core 1)
        before = hier.ring.stats.flit_hops
        hier.read(0, 0x4000, 8)   # core 0 <-> slice 1: nonzero hops
        assert hier.ring.stats.flit_hops > before
        assert hier.ledger.get("noc") > 0

    def test_same_stop_traffic_is_free(self, hier, make_bytes):
        hier.memory.load(0x5000, make_bytes(64))
        hier.read(0, 0x5000, 8)   # homed at core 0's own stop
        assert hier.ring.stats.flit_hops == 0


class TestForcedUnpinLog:
    def test_invalidation_of_pinned_line_recorded(self, hier, make_bytes):
        hier.memory.load(0x6000, make_bytes(64))
        hier.read(0, 0x6000, 8)
        hier.l1[0].pin(0x6000, owner=1)
        hier.write(1, 0x6000, b"\x55" * 8)  # invalidation hits the pin
        assert ("L1-D", 0, 0x6000) in hier.forced_unpins
        assert not hier.l1[0].contains(0x6000)
