"""Cache geometry: address decoding, way->partition mapping, data plane."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.errors import AddressError
from repro.params import CacheLevelConfig, sandybridge_8core, small_test_machine


@pytest.fixture
def l3_geo():
    return CacheGeometry(sandybridge_8core().l3_slice)


@pytest.fixture
def small_geo():
    return CacheGeometry(small_test_machine().l1d)


class TestAddressDecode:
    def test_fields_of_known_address(self, l3_geo):
        cfg = l3_geo.config
        addr = (0x5 << (6 + cfg.set_index_bits)) | (0x123 << 6) | 0x15
        parts = l3_geo.decode(addr)
        assert parts.tag == 0x5
        assert parts.set_index == 0x123
        assert parts.offset == 0x15
        assert parts.bank == 0x123 & 0xF          # low 4 set bits
        assert parts.bp == (0x123 >> 4) & 0x3     # next 2 bits

    def test_negative_address(self, l3_geo):
        with pytest.raises(AddressError):
            l3_geo.decode(-1)

    @given(st.integers(min_value=0, max_value=2**34 - 1))
    @settings(max_examples=50)
    def test_decode_rebuild_round_trip(self, addr):
        geo = CacheGeometry(sandybridge_8core().l3_slice)
        parts = geo.decode(addr)
        assert geo.rebuild_address(parts.tag, parts.set_index, parts.offset) == addr

    @given(st.integers(min_value=0, max_value=2**30 - 1))
    @settings(max_examples=50)
    def test_partition_depends_only_on_low_bits(self, addr):
        """Figure 5(b): bank/partition selection uses only the low
        min_locality_bits of the address."""
        geo = CacheGeometry(sandybridge_8core().l3_slice)
        mask = (1 << geo.config.min_locality_bits) - 1
        shifted = addr + (1 << geo.config.min_locality_bits)
        assert geo.partition_of(addr) == geo.partition_of(addr & mask)
        assert geo.partition_of(addr) == geo.partition_of(shifted)


class TestWayMapping:
    def test_all_ways_same_partition(self, l3_geo):
        """Figure 5(a): every way of a set maps into the set's partition,
        so locality never depends on run-time way choice."""
        cfg = l3_geo.config
        for set_index in (0, 1, cfg.sets - 1):
            rows = [l3_geo.row_of(set_index, w) for w in range(cfg.ways)]
            assert len(set(rows)) == cfg.ways  # distinct rows
            assert all(0 <= r < cfg.blocks_per_partition for r in rows)

    def test_distinct_sets_in_partition_get_distinct_rows(self, l3_geo):
        cfg = l3_geo.config
        stride = cfg.banks * cfg.bps_per_bank  # sets mapping to same partition
        rows0 = {l3_geo.row_of(0, w) for w in range(cfg.ways)}
        rows1 = {l3_geo.row_of(stride, w) for w in range(cfg.ways)}
        assert rows0.isdisjoint(rows1)

    def test_bad_way_rejected(self, l3_geo):
        with pytest.raises(AddressError):
            l3_geo.row_of(0, l3_geo.config.ways)


class TestDataPlane:
    def test_write_read_round_trip(self, small_geo, make_bytes):
        data = make_bytes(64)
        small_geo.write_data(0x440, 2, data)
        assert small_geo.read_data(0x440, 2) == data

    def test_different_ways_independent(self, small_geo, make_bytes):
        d0, d1 = make_bytes(64), make_bytes(64)
        small_geo.write_data(0x100, 0, d0)
        small_geo.write_data(0x100, 1, d1)
        assert small_geo.read_data(0x100, 0) == d0
        assert small_geo.read_data(0x100, 1) == d1

    def test_locate_returns_live_handle(self, small_geo, make_bytes):
        data = make_bytes(64)
        small_geo.write_data(0x200, 3, data)
        sub, row = small_geo.locate(0x200, 3)
        assert sub.read_block(row) == data

    def test_key_row_reserved(self, small_geo, make_bytes):
        """The key row is beyond all data rows and independent of them."""
        key = make_bytes(64)
        p = small_geo.partition_of(0x0)
        row = small_geo.write_key(p, key)
        assert row == small_geo.config.blocks_per_partition
        assert small_geo.subarrays[p].read_block(row) == key

    def test_partition_count(self):
        for cfg_name in ("l1d", "l2", "l3_slice"):
            cfg: CacheLevelConfig = getattr(sandybridge_8core(), cfg_name)
            geo = CacheGeometry(cfg)
            assert len(geo.subarrays) == cfg.num_partitions
