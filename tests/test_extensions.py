"""Tests for the paper's extension features: reuse-aware level selection
(Section IV-E future work) and column multiplexing (Section IV-C)."""

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.core.reuse import ReuseAwarePolicy, ReusePredictor
from repro.errors import ConfigError
from repro.params import small_test_machine
from repro.sram.column_mux import ColumnMuxLayout


class TestReusePredictor:
    def test_untracked_region_predicted_dead(self):
        p = ReusePredictor()
        assert not p.predict(0x1000)

    def test_touches_build_confidence(self):
        p = ReusePredictor()
        p.observe_use(0x1000)
        assert p.predict(0x1000)

    def test_cc_consumption_decays(self):
        p = ReusePredictor()
        p.observe_use(0x1000)
        for _ in range(4):
            p.observe_cc(0x1000)
        assert not p.predict(0x1000)

    def test_regions_are_page_granular(self):
        p = ReusePredictor()
        p.observe_use(0x1000)
        assert p.predict(0x1FC0)       # same page
        assert not p.predict(0x2000)   # next page

    def test_capacity_eviction(self):
        p = ReusePredictor(capacity=2)
        p.observe_use(0x0000)
        p.observe_use(0x1000)
        p.observe_use(0x1000)
        p.observe_use(0x2000)  # evicts the least-touched (0x0000)
        assert p.predict(0x1000)
        assert not p.predict(0x0000)


class TestReuseAwarePolicy:
    def test_live_data_stays_high(self):
        policy = ReuseAwarePolicy()
        policy.predictor.observe_use(0x1000)
        assert policy.select("L1", [0x1000]) == "L1"
        assert policy.demotions == 0

    def test_dead_data_demoted_to_l3(self):
        policy = ReuseAwarePolicy()
        assert policy.select("L1", [0x1000]) == "L3"
        assert policy.demotions == 1

    def test_l3_never_demoted_further(self):
        policy = ReuseAwarePolicy()
        assert policy.select("L3", [0x1000]) == "L3"
        assert policy.demotions == 0

    def test_integration_with_controller(self, make_bytes):
        """A controller with the policy demotes dead L1-resident operands
        to L3; without it the same operands compute at L1."""
        da, db = make_bytes(512), make_bytes(512)
        m = ComputeCacheMachine(small_test_machine())
        a, b, c = m.arena.alloc_colocated(512, 3)
        m.load(a, da)
        m.load(b, db)
        for addr in (a, b, c):
            m.touch_range(addr, 512, for_write=(addr == c))
        assert m.cc(cc_ops.cc_and(a, b, c, 512)).level == "L1"

        m2 = ComputeCacheMachine(small_test_machine())
        a, b, c = m2.arena.alloc_colocated(512, 3)
        m2.load(a, da)
        m2.load(b, db)
        for addr in (a, b, c):
            m2.touch_range(addr, 512, for_write=(addr == c))
        m2.controllers[0].reuse_policy = ReuseAwarePolicy()
        res = m2.cc(cc_ops.cc_and(a, b, c, 512))
        assert res.level == "L3"  # predictor has no reuse evidence
        # Functional result is unchanged by the policy.
        assert m2.peek(c, 512) == m.peek(c, 512)


class TestColumnMux:
    def test_no_conflicts_within_block(self):
        """The paper's claim: interleaving lets a whole block be accessed
        in parallel even with column muxing."""
        for degree in (1, 2, 4, 8):
            layout = ColumnMuxLayout(block_bits=512, mux_degree=degree)
            assert layout.conflicts_within_block() == 0
            assert layout.bits_sensed_per_cycle() == 512

    def test_adjacent_bits_in_different_subarrays(self):
        layout = ColumnMuxLayout(block_bits=512, mux_degree=4)
        homes = [layout.locate_bit(b).physical_subarray for b in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_strike_resilience(self):
        layout = ColumnMuxLayout(block_bits=512, mux_degree=8)
        assert layout.strike_resilience_distance() == 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            ColumnMuxLayout(block_bits=512, mux_degree=3)
        with pytest.raises(ConfigError):
            ColumnMuxLayout(block_bits=100, mux_degree=8)
        layout = ColumnMuxLayout()
        with pytest.raises(ConfigError):
            layout.locate_bit(512)
