"""Differential equivalence of the packed and bit-exact backends.

The packed fast-path backend must be *observationally identical* to the
bit-exact circuit model: same data, same CC-R result masks, same cycle
counts, same per-sub-array statistics, and same energy - on any
instruction stream.  Two layers of evidence:

1. a seeded random-stream harness driving full machine pairs through
   identical CC instruction sequences (the headline differential test);
2. Hypothesis properties running every CC opcode on both backends with
   random payloads, odd (non-power-of-two) block counts, misaligned
   (block- but not page-aligned) starts, and page-spanning ranges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine, cc_ops
from repro.core.isa import CLMUL_LANES, CMP_MAX_BYTES, SEARCH_MAX_BYTES
from repro.params import BLOCK_SIZE, PAGE_SIZE, small_test_machine
from repro.sram.subarray import BACKENDS

REGION = 2 * PAGE_SIZE  # big enough that offsets can span a page boundary


def machine_pair(trace_events=False):
    """Two machines with identical configs and arena layouts, differing
    only in execution backend."""
    return {be: ComputeCacheMachine(small_test_machine(), backend=be,
                                    trace_events=trace_events)
            for be in BACKENDS}


def stats_snapshot(m):
    """Flat comparable view of every sub-array's statistics."""
    snap = []
    h = m.hierarchy
    for level in (*h.l1, *h.l2, *h.l3):
        for sub in level.geometry.subarrays:
            s = sub.stats
            snap.append((level.name, s.reads, s.writes,
                         dict(s.compute_ops), s.energy_pj, s.busy_cycles))
    return snap


def outcome(m, res, dest=None, size=0):
    """Everything observable about one executed instruction."""
    data = m.peek(dest, size) if dest is not None else b""
    return (res.result, res.result_bytes, res.cycles, res.pieces,
            res.level, res.inplace_ops, res.nearplace_ops, res.risc_ops,
            data)


def build_plan(seed, steps=50):
    """A backend-independent random instruction plan (relative offsets)."""
    rng = np.random.default_rng(seed)
    plan = []
    for _ in range(steps):
        kind = ["and", "or", "xor", "not", "copy", "buz", "cmp", "search",
                "clmul", "write", "add", "mul", "reduce"][int(rng.integers(0, 13))]
        # Block-aligned offsets into a two-page region: often misaligned
        # relative to the page, sometimes spanning the page boundary.
        off = int(rng.integers(0, PAGE_SIZE // BLOCK_SIZE)) * BLOCK_SIZE
        max_blocks = (REGION - off) // BLOCK_SIZE
        blocks = int(rng.integers(1, min(max_blocks, 24) + 1))
        size = blocks * BLOCK_SIZE
        if kind == "cmp":
            size = min(size, CMP_MAX_BYTES)
        elif kind == "search":
            size = min(size, SEARCH_MAX_BYTES)
        elif kind == "mul":
            # Bit-serial multiply is the slowest bit-exact op; keep the
            # random-stream harness inside the tier-1 time budget.
            size = min(size, 4 * BLOCK_SIZE)
        plan.append({
            "kind": kind,
            "off": off,
            "size": size,
            "lane_bits": int(rng.choice(CLMUL_LANES)),
            "elem_bits": int(rng.choice([8, 16, 32])),
            "data": rng.integers(0, 256, 512, dtype=np.uint8).tobytes(),
        })
    return plan


def run_plan(m, plan):
    """Execute a plan on one machine; returns (outcomes, buffer bases)."""
    a, b, c = m.arena.alloc_colocated(REGION, 3)
    key = m.arena.alloc_page_aligned(BLOCK_SIZE)
    rng = np.random.default_rng(99)  # same payload stream for both machines
    m.load(a, rng.integers(0, 256, REGION, dtype=np.uint8).tobytes())
    m.load(b, rng.integers(0, 256, REGION, dtype=np.uint8).tobytes())
    m.load(key, rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8).tobytes())
    outcomes = []
    for step in plan:
        kind, off, size = step["kind"], step["off"], step["size"]
        sa, sb, sc = a + off, b + off, c + off
        if kind == "write":
            m.write(sa, step["data"][:BLOCK_SIZE])
            outcomes.append(("write", m.peek(sa, BLOCK_SIZE)))
            continue
        instr = {
            "and": lambda: cc_ops.cc_and(sa, sb, sc, size),
            "or": lambda: cc_ops.cc_or(sa, sb, sc, size),
            "xor": lambda: cc_ops.cc_xor(sa, sb, sc, size),
            "not": lambda: cc_ops.cc_not(sa, sc, size),
            "copy": lambda: cc_ops.cc_copy(sa, sc, size),
            "buz": lambda: cc_ops.cc_buz(sc, size),
            "cmp": lambda: cc_ops.cc_cmp(sa, sb, size),
            "search": lambda: cc_ops.cc_search(sa, key, size),
            "clmul": lambda: cc_ops.cc_clmul(sa, sb, sc, size,
                                             lane_bits=step["lane_bits"]),
            "add": lambda: cc_ops.cc_add(sa, sb, sc, size,
                                         elem_bits=step["elem_bits"]),
            "mul": lambda: cc_ops.cc_mul(sa, sb, sc, size,
                                         elem_bits=step["elem_bits"]),
            "reduce": lambda: cc_ops.cc_reduce(sa, size,
                                               elem_bits=step["elem_bits"]),
        }[kind]()
        res = m.cc(instr)
        dest = None if kind in ("cmp", "search", "reduce") else sc
        outcomes.append(outcome(m, res, dest, size))
    return outcomes, (a, b, c)


class TestDifferentialStream:
    """The headline harness: identical random streams, bit-exact agreement."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_streams_agree(self, seed):
        plan = build_plan(seed)
        machines = machine_pair()
        results = {be: run_plan(m, plan)[0] for be, m in machines.items()}
        for i, (bo, po) in enumerate(zip(results["bitexact"],
                                         results["packed"])):
            assert bo == po, f"seed {seed}: backends diverge at step {i}"
        assert (stats_snapshot(machines["bitexact"])
                == stats_snapshot(machines["packed"]))
        assert (machines["bitexact"].ledger.pj
                == machines["packed"].ledger.pj)

    def test_final_memory_images_agree(self):
        plan = build_plan(7, steps=30)
        machines = machine_pair()
        images = {}
        for be, m in machines.items():
            _, bufs = run_plan(m, plan)
            images[be] = b"".join(m.peek(base, REGION) for base in bufs)
        assert images["bitexact"] == images["packed"]

    @pytest.mark.parametrize("seed", [0, 3])
    def test_event_streams_agree(self, seed):
        """Event tracing is backend-invariant: the same random plan must
        produce bit-identical event streams (every field, including cycle
        stamps and spans - simulated time only, never wall-clock)."""
        plan = build_plan(seed)
        machines = machine_pair(trace_events=True)
        for m in machines.values():
            run_plan(m, plan)
        ev = {be: m.tracer.snapshot() for be, m in machines.items()}
        assert len(ev["bitexact"]) == len(ev["packed"]) > 0
        for i, (be_ev, pk_ev) in enumerate(zip(ev["bitexact"],
                                               ev["packed"])):
            assert be_ev == pk_ev, f"seed {seed}: event {i} diverges"
        assert (machines["bitexact"].tracer.dropped
                == machines["packed"].tracer.dropped)


# -- Hypothesis per-opcode properties -----------------------------------------

# Fresh machine pairs per example are the dominant cost; cap examples so
# the property battery stays inside the tier-1 budget.
PROP_SETTINGS = settings(max_examples=15, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

offsets_st = st.integers(0, PAGE_SIZE // BLOCK_SIZE - 1).map(
    lambda blk: blk * BLOCK_SIZE)
blocks_st = st.integers(1, 9)  # odd counts (3, 5, 7...) included
payload_st = st.integers(0, 2**32 - 1)  # seed for payloads


def _payload(seed, n):
    return np.random.default_rng(seed).integers(
        0, 256, n, dtype=np.uint8).tobytes()


def _pair_with_data(seed):
    machines = machine_pair()
    layout = {}
    for be, m in machines.items():
        a, b, c = m.arena.alloc_colocated(REGION, 3)
        key = m.arena.alloc_page_aligned(BLOCK_SIZE)
        m.load(a, _payload(seed, REGION))
        m.load(b, _payload(seed + 1, REGION))
        m.load(key, _payload(seed, REGION)[:BLOCK_SIZE])
        layout[be] = (a, b, c, key)
    assert layout["bitexact"] == layout["packed"]
    return machines, layout


class TestOpcodeProperties:
    @PROP_SETTINGS
    @given(op=st.sampled_from(["and", "or", "xor", "not", "copy", "buz"]),
           off=offsets_st, blocks=blocks_st, seed=payload_st)
    def test_logical_ops(self, op, off, blocks, seed):
        size = blocks * BLOCK_SIZE
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            instr = {
                "and": lambda: cc_ops.cc_and(a + off, b + off, c + off, size),
                "or": lambda: cc_ops.cc_or(a + off, b + off, c + off, size),
                "xor": lambda: cc_ops.cc_xor(a + off, b + off, c + off, size),
                "not": lambda: cc_ops.cc_not(a + off, c + off, size),
                "copy": lambda: cc_ops.cc_copy(a + off, c + off, size),
                "buz": lambda: cc_ops.cc_buz(c + off, size),
            }[op]()
            res = m.cc(instr)
            out[be] = outcome(m, res, c + off, size)
        assert out["bitexact"] == out["packed"]

    @PROP_SETTINGS
    @given(off=offsets_st, blocks=st.integers(1, 8), seed=payload_st,
           equal_prefix=st.integers(0, 8))
    def test_cmp(self, off, blocks, seed, equal_prefix):
        size = min(blocks * BLOCK_SIZE, CMP_MAX_BYTES)
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            if equal_prefix:  # force some equal words so the mask is mixed
                m.cc(cc_ops.cc_copy(a + off, b + off,
                                    min(equal_prefix * BLOCK_SIZE,
                                        REGION - off)))
            res = m.cc(cc_ops.cc_cmp(a + off, b + off, size))
            out[be] = outcome(m, res)
        assert out["bitexact"] == out["packed"]

    @PROP_SETTINGS
    @given(off=offsets_st, blocks=st.integers(1, 16), seed=payload_st,
           plant=st.booleans())
    def test_search(self, off, blocks, seed, plant):
        size = min(blocks * BLOCK_SIZE, SEARCH_MAX_BYTES)
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, key = layout[be]
            if plant:  # guarantee at least one hit
                m.cc(cc_ops.cc_copy(key, a + off, BLOCK_SIZE))
            res = m.cc(cc_ops.cc_search(a + off, key, size))
            out[be] = outcome(m, res)
        assert out["bitexact"] == out["packed"]

    @PROP_SETTINGS
    @given(off=offsets_st, blocks=blocks_st, seed=payload_st,
           lane_bits=st.sampled_from(CLMUL_LANES))
    def test_clmul(self, off, blocks, seed, lane_bits):
        size = blocks * BLOCK_SIZE
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            res = m.cc(cc_ops.cc_clmul(a + off, b + off, c + off, size,
                                       lane_bits=lane_bits))
            out[be] = outcome(m, res)
        assert out["bitexact"] == out["packed"]

    @PROP_SETTINGS
    @given(blocks=st.integers(1, 16), seed=payload_st)
    def test_page_spanning(self, blocks, seed):
        """Operands starting one block before a page boundary must split
        into pieces and still agree across backends."""
        off = PAGE_SIZE - BLOCK_SIZE
        size = blocks * BLOCK_SIZE
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            res = m.cc(cc_ops.cc_xor(a + off, b + off, c + off, size))
            if blocks > 1:
                assert res.pieces >= 2
            out[be] = outcome(m, res, c + off, size)
        assert out["bitexact"] == out["packed"]


class TestArithProperties:
    """Bit-serial arithmetic agrees across backends AND with numpy's
    fixed-width unsigned integer semantics (wrap-around modulo 2^w)."""

    @PROP_SETTINGS
    @given(op=st.sampled_from(["add", "mul"]), off=offsets_st,
           blocks=st.integers(1, 4), seed=payload_st,
           elem_bits=st.sampled_from([8, 16, 32]))
    def test_add_mul_match_numpy(self, op, off, blocks, seed, elem_bits):
        size = blocks * BLOCK_SIZE
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            instr = (cc_ops.cc_add if op == "add" else cc_ops.cc_mul)(
                a + off, b + off, c + off, size, elem_bits=elem_bits)
            out[be] = outcome(m, m.cc(instr), c + off, size)
        assert out["bitexact"] == out["packed"]
        dt = np.dtype(f"<u{elem_bits // 8}")
        ea = np.frombuffer(_payload(seed, REGION)[off:off + size], dtype=dt)
        eb = np.frombuffer(_payload(seed + 1, REGION)[off:off + size], dtype=dt)
        expect = (ea + eb) if op == "add" else (ea * eb)  # wraps mod 2^w
        assert out["packed"][-1] == expect.tobytes()

    @PROP_SETTINGS
    @given(off=offsets_st, blocks=st.integers(1, 9), seed=payload_st,
           elem_bits=st.sampled_from([8, 16, 32]))
    def test_reduce_matches_numpy(self, off, blocks, seed, elem_bits):
        size = blocks * BLOCK_SIZE
        machines, layout = _pair_with_data(seed)
        out = {}
        for be, m in machines.items():
            a, b, c, _ = layout[be]
            res = m.cc(cc_ops.cc_reduce(a + off, size, elem_bits=elem_bits))
            out[be] = outcome(m, res)
        assert out["bitexact"] == out["packed"]
        dt = np.dtype(f"<u{elem_bits // 8}")
        ea = np.frombuffer(_payload(seed, REGION)[off:off + size], dtype=dt)
        expect = int(ea.astype(np.uint64).sum(dtype=np.uint64))
        assert out["packed"][0] == expect % (1 << 64)
