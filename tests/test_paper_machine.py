"""Integration tests on the full Table IV machine (heavier; a handful)."""

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.params import sandybridge_8core


@pytest.fixture(scope="module")
def paper():
    return ComputeCacheMachine(sandybridge_8core())


class TestPaperMachineGeometry:
    def test_subarray_inventory(self, paper):
        """Section II-A: a 2 MB L3 slice has 64 sub-arrays across 16 banks;
        the 16 MB L3 totals 512 sub-arrays supporting 8 KB operands."""
        slice_cfg = paper.config.l3_slice
        assert slice_cfg.num_partitions == 64
        total_subarrays = slice_cfg.num_partitions * paper.config.l3_slices
        assert total_subarrays == 512
        assert total_subarrays * 64 == 32 * 1024  # bytes operable in parallel

    def test_physical_rows_match_capacity(self, paper):
        for level in (paper.hierarchy.l1[0], paper.hierarchy.l2[0],
                      paper.hierarchy.l3[0]):
            cfg = level.config
            data_rows = sum(
                sub.rows - 1 for sub in level.geometry.subarrays  # minus key row
            )
            assert data_rows * cfg.block_size == cfg.size

    def test_area_overhead_parameter(self, paper):
        assert paper.config.cc.area_overhead_fraction == pytest.approx(0.08)


class TestPaperMachineEndToEnd:
    def test_8kb_operands_full_width(self, paper, make_bytes):
        """An 8 KB cc_xor exercises two pages' worth of blocks across the
        full slice geometry."""
        a, b, c = paper.arena.alloc_colocated(8192, 3)
        da, db = make_bytes(8192), make_bytes(8192)
        paper.load(a, da)
        paper.load(b, db)
        res = paper.cc(cc_ops.cc_xor(a, b, c, 8192))
        assert res.pieces == 2
        assert res.inplace_ops == 128
        expected = (np.frombuffer(da, np.uint8) ^ np.frombuffer(db, np.uint8)).tobytes()
        assert paper.peek(c, 8192) == expected

    def test_max_operand_16kb(self, paper, make_bytes):
        a, c = paper.arena.alloc_colocated(16 * 1024, 2)
        data = make_bytes(16 * 1024)
        paper.load(a, data)
        res = paper.cc(cc_ops.cc_copy(a, c, 16 * 1024))
        assert res.inplace_ops == 256
        assert paper.peek(c, 16 * 1024) == data

    def test_eight_cores_independent_controllers(self, paper, make_bytes):
        for core in range(paper.config.cores):
            a, c = paper.arena.alloc_colocated(256, 2)
            data = make_bytes(256)
            paper.load(a, data)
            res = paper.cc(cc_ops.cc_copy(a, c, 256), core=core)
            assert res.used_inplace
            assert paper.peek(c, 256) == data
        # Every core's controller saw (at least) its own instruction; the
        # module-scoped machine means core 0 accumulated earlier tests' too.
        assert all(
            ctrl.stats.instructions >= 1 for ctrl in paper.controllers
        )

    def test_nuca_pages_follow_first_toucher(self, paper, make_bytes):
        addr = paper.arena.alloc_page_aligned(64)
        paper.load(addr, make_bytes(64))
        paper.read(addr, 8, core=5)
        assert paper.hierarchy.home_slice(addr) == 5

    def test_invariants_after_all_of_the_above(self, paper):
        paper.hierarchy.check_inclusion()
        paper.hierarchy.check_single_writer()
