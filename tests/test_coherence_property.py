"""Property-based coherence testing.

Random multi-core read/write sequences are checked against a flat reference
memory: every read must return the last written value, and the protocol
invariants (inclusion, single-writer/multiple-reader, directory
consistency) must hold at every quiescent point.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.energy.accounting import EnergyLedger
from repro.params import small_test_machine

N_BLOCKS = 64  # concentrated footprint to force sharing and eviction


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n_ops):
        core = draw(st.integers(0, 1))
        block = draw(st.integers(0, N_BLOCKS - 1))
        is_write = draw(st.booleans())
        value = draw(st.integers(0, 255))
        ops.append((core, block, is_write, value))
    return ops


class TestRandomCoherence:
    @given(op_sequences())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reads_see_last_write(self, ops):
        config = small_test_machine()
        hier = CacheHierarchy(config, EnergyLedger())
        reference = np.zeros(N_BLOCKS * 64, dtype=np.uint8)
        for core, block, is_write, value in ops:
            addr = block * 64
            if is_write:
                data = bytes([value]) * 64
                hier.write(core, addr, data)
                reference[addr : addr + 64] = value
            else:
                out, _ = hier.read(core, addr, 64)
                assert out == reference[addr : addr + 64].tobytes()
        hier.check_inclusion()
        hier.check_single_writer()

    @given(op_sequences())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_coherent_peek_matches_reference(self, ops):
        config = small_test_machine()
        hier = CacheHierarchy(config, EnergyLedger())
        reference = np.zeros(N_BLOCKS * 64, dtype=np.uint8)
        for core, block, is_write, value in ops:
            addr = block * 64
            if is_write:
                hier.write(core, addr, bytes([value]) * 64)
                reference[addr : addr + 64] = value
            else:
                hier.read(core, addr, 8)
        for block in range(N_BLOCKS):
            addr = block * 64
            assert hier.coherent_peek(addr, 64) == reference[addr : addr + 64].tobytes()


class TestConflictHeavyWorkload:
    """Deterministic stress: every core hammers the same two sets."""

    def test_ping_pong_writes(self):
        config = small_test_machine()
        hier = CacheHierarchy(config, EnergyLedger())
        addr = 0x1000
        for i in range(50):
            core = i % config.cores
            hier.write(core, addr, bytes([i]) * 64)
            out, _ = hier.read((core + 1) % config.cores, addr, 64)
            assert out == bytes([i]) * 64
        hier.check_inclusion()
        hier.check_single_writer()

    def test_false_sharing_pattern(self):
        """Cores write disjoint words of one block; all writes survive."""
        config = small_test_machine()
        hier = CacheHierarchy(config, EnergyLedger())
        hier.memory.load(0x2000, bytes(64))
        for i in range(16):
            core = i % config.cores
            hier.write(core, 0x2000 + i * 4, bytes([i + 1]) * 4)
        expected = b"".join(bytes([i + 1]) * 4 for i in range(16))
        assert hier.coherent_peek(0x2000, 64) == expected

    def test_eviction_storm_preserves_data(self):
        """Conflict misses across all levels never lose dirty data."""
        config = small_test_machine()
        hier = CacheHierarchy(config, EnergyLedger())
        l1 = config.l1d
        stride = l1.sets * l1.block_size
        addrs = [i * stride for i in range(3 * l1.ways)]
        for i, addr in enumerate(addrs):
            hier.write(0, addr, bytes([i + 1]) * 64)
        for i, addr in enumerate(addrs):
            out, _ = hier.read(1, addr, 64)
            assert out == bytes([i + 1]) * 64
        hier.check_inclusion()


@pytest.mark.parametrize("cores", [1, 2])
def test_directory_empty_blocks_cleaned(cores):
    """Directory entries vanish when the last sharer leaves."""
    config = small_test_machine()
    hier = CacheHierarchy(config, EnergyLedger())
    l1, l2 = config.l1d, config.l2
    # Evict a block all the way out of the private hierarchy.
    stride = l2.sets * l2.block_size
    victim = 0x0
    hier.read(0, victim, 8)
    for i in range(1, l2.ways + 2):
        hier.read(0, victim + i * stride, 8)
    if not hier.l2[0].contains(victim):
        slice_id = hier.home_slice(victim, 0)
        entry = hier.directory[slice_id].peek(victim)
        assert entry is None or 0 not in entry.sharers
