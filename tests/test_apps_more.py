"""Additional application behaviors: edge cases, fallbacks, metadata."""

import numpy as np
import pytest

from repro import ComputeCacheMachine
from repro.apps import bitmap_db, bmm, stringmatch, textgen, wordcount
from repro.apps.common import AppResult, StreamRunner, fresh_machine, pad_to_slot
from repro.energy.accounting import EnergyLedger
from repro.params import small_test_machine


class TestCommonPlumbing:
    def test_pad_to_slot(self):
        assert pad_to_slot(b"hi") == b"hi" + bytes(62)
        assert len(pad_to_slot(b"x" * 100)) == 64  # truncated to slot
        assert pad_to_slot(b"") == bytes(64)

    def test_stream_runner_chunks(self, make_bytes):
        from repro.cpu.program import Instr

        m = ComputeCacheMachine(small_test_machine())
        runner = StreamRunner(m, "t", chunk=4)
        for _ in range(10):
            runner.emit(Instr.scalar())
        runner.flush()
        assert runner.instructions == 10
        assert runner.cycles == 10

    def test_app_result_describe(self):
        res = AppResult(app="x", variant="cc", cycles=1234.0,
                        instructions=56, energy=EnergyLedger())
        text = res.describe()
        assert "x/cc" in text and "1,234" in text and "56" in text


class TestWordCountEdges:
    def test_bin_overflow_falls_back_to_software(self):
        """More unique same-bin words than slots: the overflow map takes
        them and counts still come out exact."""
        words = tuple(f"aa{chr(ord('a') + i)}" for i in range(6)) * 3
        corpus = textgen.Corpus(words=words, vocabulary=tuple(sorted(set(words))))
        cfg = wordcount.WordCountConfig(n_bins=676, bin_capacity=4,
                                        dict_capacity=64)
        m = ComputeCacheMachine(small_test_machine())
        res = wordcount.run_wordcount(corpus, "cc", m, cfg)
        assert res.output == textgen.reference_wordcount(corpus)
        assert res.stats["overflow_words"] == 2  # 6 unique, 4 slots

    def test_single_word_corpus(self):
        corpus = textgen.Corpus(words=("zip",) * 5, vocabulary=("zip",))
        for variant in ("baseline", "cc"):
            m = ComputeCacheMachine(small_test_machine())
            res = wordcount.run_wordcount(corpus, variant, m)
            assert res.output == {"zip": 5}

    def test_all_unique_corpus(self):
        """Every word is an insert: the miss path dominates."""
        words = tuple(f"{a}{b}x" for a in "abcd" for b in "efgh")
        corpus = textgen.Corpus(words=words, vocabulary=tuple(sorted(words)))
        m = ComputeCacheMachine(small_test_machine())
        res = wordcount.run_wordcount(corpus, "cc", m)
        assert res.output == {w: 1 for w in words}


class TestStringMatchEdges:
    def test_no_keys_in_text(self):
        corpus = textgen.zipf_corpus(9, 100, vocab_size=50)
        wl = stringmatch.StringMatchWorkload(corpus=corpus,
                                             keys=("zzzznotthere",))
        for variant in ("baseline", "cc"):
            m = ComputeCacheMachine(small_test_machine())
            res = stringmatch.run_stringmatch(wl, variant, m)
            assert res.output == []

    def test_every_word_matches(self):
        corpus = textgen.Corpus(words=("hit",) * 70, vocabulary=("hit",))
        wl = stringmatch.StringMatchWorkload(corpus=corpus, keys=("hit",))
        m = ComputeCacheMachine(small_test_machine())
        res = stringmatch.run_stringmatch(wl, "cc", m)
        assert sorted(res.output) == [(i, 0) for i in range(70)]

    def test_partial_final_batch(self):
        """A non-multiple-of-64 word count pads the last batch; padding
        slots never produce matches."""
        corpus = textgen.Corpus(words=("pad",) * 65, vocabulary=("pad",))
        wl = stringmatch.StringMatchWorkload(corpus=corpus, keys=("pad",))
        m = ComputeCacheMachine(small_test_machine())
        res = stringmatch.run_stringmatch(wl, "cc", m)
        assert len(res.output) == 65


class TestBitmapEdges:
    def test_single_bin_query(self):
        ds = bitmap_db.make_dataset(11, n_rows=4096, cardinalities=(4,))
        q = bitmap_db.Query(attr=0, bins=(2,))
        for variant in ("baseline", "cc"):
            m = ComputeCacheMachine(small_test_machine())
            res = bitmap_db.run_bitmap_queries(ds, [q], variant, m)
            assert res.output == [bitmap_db.reference_query(ds, q).tobytes()]

    def test_full_range_query_selects_everything(self):
        ds = bitmap_db.make_dataset(12, n_rows=4096, cardinalities=(4,))
        q = bitmap_db.Query(attr=0, bins=(0, 1, 2, 3))
        assert bitmap_db.reference_query(ds, q).tobytes() == b"\xff" * 512
        m = ComputeCacheMachine(small_test_machine())
        res = bitmap_db.run_bitmap_queries(ds, [q], "cc", m)
        assert res.output == [b"\xff" * 512]

    def test_conjunction_narrows(self):
        ds = bitmap_db.make_dataset(13, n_rows=4096, cardinalities=(4, 4))
        broad = bitmap_db.Query(attr=0, bins=(0, 1, 2, 3))
        narrow = bitmap_db.Query(attr=0, bins=(0, 1, 2, 3),
                                 and_attr=1, and_bins=(0,))
        rb = np.unpackbits(bitmap_db.reference_query(ds, broad)).sum()
        rn = np.unpackbits(bitmap_db.reference_query(ds, narrow)).sum()
        assert rn < rb


class TestBMMEdges:
    def test_zero_matrix(self):
        n = 64
        wl = bmm.BMMWorkload(n=n, a=np.zeros((n, n), np.uint8),
                             b=np.ones((n, n), np.uint8))
        m = ComputeCacheMachine(small_test_machine())
        res = bmm.run_bmm(wl, "cc", m)
        assert not res.output.any()

    def test_all_ones_matrices(self):
        """ones x ones over GF(2): every element = parity(n) = 0 for even n."""
        n = 64
        wl = bmm.BMMWorkload(n=n, a=np.ones((n, n), np.uint8),
                             b=np.ones((n, n), np.uint8))
        m = ComputeCacheMachine(small_test_machine())
        res = bmm.run_bmm(wl, "cc", m)
        assert not res.output.any()

    def test_permutation_matrix(self):
        """Multiplying by a permutation matrix permutes rows exactly."""
        n = 64
        rng = np.random.default_rng(15)
        a = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        perm = np.eye(n, dtype=np.uint8)[rng.permutation(n)]
        wl = bmm.BMMWorkload(n=n, a=a, b=perm)
        m = ComputeCacheMachine(small_test_machine())
        res = bmm.run_bmm(wl, "cc", m)
        assert np.array_equal(res.output, bmm.reference_bmm(wl))


class TestEnergyIsolation:
    def test_fresh_machines_do_not_share_ledgers(self, make_bytes):
        m1, m2 = fresh_machine(small_test_machine()), fresh_machine(small_test_machine())
        addr = m1.arena.alloc(64)
        m1.load(addr, make_bytes(64))
        m1.read(addr, 8)
        assert m1.ledger.total() > 0
        assert m2.ledger.total() == 0


class TestAppResultExport:
    def test_to_dict_json_ready(self):
        import json

        ledger = EnergyLedger()
        ledger.add("core", 1500.0)
        res = AppResult(app="x", variant="cc", cycles=10.0, instructions=5,
                        energy=ledger, stats={"k": 1, "obj": object()})
        doc = res.to_dict()
        json.dumps(doc)  # must be serializable
        assert doc["dynamic_nj"] == 1.5
        assert doc["stats"] == {"k": 1}  # non-scalar stats dropped
