"""Near-place unit internals: operand registers, handlers, error paths."""

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.cache.block import MESIState
from repro.cache.cache import CacheLevel
from repro.core.nearplace import NearPlaceUnit, OperandRegisters
from repro.core.operation_table import BlockOperand, BlockOperation
from repro.energy.accounting import EnergyLedger
from repro.errors import ReproError
from repro.params import CacheLevelConfig, small_test_machine


@pytest.fixture
def level(make_bytes):
    cfg = CacheLevelConfig(name="L2", size=16 * 1024, ways=4, banks=4,
                           bps_per_bank=2, hit_latency=11)
    lvl = CacheLevel(cfg, EnergyLedger())
    for i in range(4):
        lvl.fill(i * 64, make_bytes(64), MESIState.EXCLUSIVE)
    return lvl


def block_op(subop, srcs, dest=None, lane_bits=None):
    operands = [BlockOperand(a, is_dest=False) for a in srcs]
    if dest is not None:
        operands.append(BlockOperand(dest, is_dest=True))
    return BlockOperation(instr_id=0, op_index=0, subarray_op=subop,
                          operands=operands, lane_bits=lane_bits)


class TestOperandRegisters:
    def test_hit_after_load(self):
        regs = OperandRegisters(capacity=2)
        assert not regs.acquire(0x0)
        assert regs.acquire(0x0)
        assert regs.hits == 1 and regs.loads == 1

    def test_lru_spill(self):
        regs = OperandRegisters(capacity=2)
        regs.acquire(0x0)
        regs.acquire(0x40)
        regs.acquire(0x80)  # spills 0x0
        assert regs.spills == 1
        assert not regs.acquire(0x0)  # miss: it was spilled

    def test_invalidate(self):
        regs = OperandRegisters(capacity=2)
        regs.acquire(0x0)
        regs.invalidate(0x0)
        assert not regs.acquire(0x0)

    def test_mru_ordering(self):
        regs = OperandRegisters(capacity=2)
        regs.acquire(0x0)
        regs.acquire(0x40)
        regs.acquire(0x0)   # 0x0 becomes MRU
        regs.acquire(0x80)  # spills 0x40, not 0x0
        assert regs.acquire(0x0)


class TestNearPlaceHandlers:
    def test_register_hit_skips_read_energy(self, level):
        unit = NearPlaceUnit()
        op1 = block_op("cmp", [0x0, 0x40])
        unit.execute(level, op1)
        first = level.ledger.total()
        # Same operands again: both register hits, no new read energy
        # (only whatever the op writes - cmp writes nothing).
        op2 = block_op("cmp", [0x0, 0x40])
        unit.execute(level, op2)
        assert level.ledger.total() == first
        assert unit.registers.hits == 2

    def test_dest_write_invalidates_register(self, level, make_bytes):
        unit = NearPlaceUnit()
        unit.execute(level, block_op("copy", [0x0], dest=0x40))
        # 0x40's register copy (if any) must be stale now: reading it as a
        # source must reload from the cache.
        before_loads = unit.registers.loads
        unit.execute(level, block_op("not", [0x40], dest=0xC0))
        assert unit.registers.loads == before_loads + 1

    def test_unknown_op_rejected(self, level):
        unit = NearPlaceUnit()
        with pytest.raises(ReproError):
            unit.execute(level, block_op("mul", [0x0, 0x40], dest=0x80))

    def test_missing_key_rejected(self, level):
        unit = NearPlaceUnit()
        with pytest.raises(ReproError):
            unit.execute(level, block_op("search", [0x0]), key_data=None)

    def test_clmul_needs_lanes(self, level):
        unit = NearPlaceUnit()
        with pytest.raises(ReproError):
            unit.execute(level, block_op("clmul", [0x0, 0x40], dest=0x80))

    def test_dest_without_result_rejected(self, level):
        unit = NearPlaceUnit()
        with pytest.raises(ReproError):
            # cmp produces no data; a dest operand is a malformed op.
            unit.execute(level, block_op("cmp", [0x0, 0x40], dest=0x80))


class TestKeyReuseThroughRegisters:
    def test_nearplace_search_reuses_key_register(self, make_bytes):
        """Near-place search over many blocks reads the key once into a
        register; subsequent block ops hit it."""
        m = ComputeCacheMachine(small_test_machine())
        data, key = m.arena.alloc_colocated(512, 2)
        blocks = [make_bytes(64) for _ in range(8)]
        m.load(data, b"".join(blocks))
        m.load(key, blocks[5])
        res = m.cc(cc_ops.cc_search(data, key, 512), force_nearplace=True)
        assert res.result == 1 << 5
        assert res.nearplace_ops == 8
