"""Operand-locality predicate tests (Section IV-C, Table III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.locality import (
    alignment_satisfies,
    check_operand_locality,
    page_aligned_pair,
    partitions_match,
    required_alignment_bits,
)
from repro.errors import OperandLocalityError
from repro.params import PAGE_SIZE, sandybridge_8core


@pytest.fixture
def cfg():
    return sandybridge_8core()


class TestPartitionsMatch:
    def test_page_aligned_operands_always_match(self, cfg):
        """The paper's headline software rule: same page offset => operand
        locality at every cache level."""
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            assert partitions_match(3 * PAGE_SIZE + 0x40, 7 * PAGE_SIZE + 0x40, level)

    def test_different_offsets_can_fail(self, cfg):
        # Offsets differing in a bank-select bit land in different banks.
        assert not partitions_match(0x000, 0x040, cfg.l3_slice)

    def test_same_block_partition_within_page(self, cfg):
        """Operands need the same 4 KB *offset*, not separate pages: an
        address and itself + 4 KB-multiple inside a superpage both work."""
        base = 0x10000
        assert partitions_match(base, base + PAGE_SIZE, cfg.l3_slice)

    @given(st.integers(0, 2**30), st.integers(0, 2**30))
    @settings(max_examples=50)
    def test_predicate_equals_geometry(self, a, b):
        """The pure address check agrees with full geometry decoding."""
        cfg = sandybridge_8core().l3_slice
        geo = CacheGeometry(cfg)
        a &= ~63
        b &= ~63
        same_partition = (
            geo.partition_of(a) == geo.partition_of(b)
        )
        assert partitions_match(a, b, cfg) == same_partition


class TestCheckOperandLocality:
    def test_empty_and_single(self, cfg):
        assert check_operand_locality([], cfg.l3_slice)
        assert check_operand_locality([0x1000], cfg.l3_slice)

    def test_group_pass(self, cfg):
        addrs = [i * PAGE_SIZE + 0x80 for i in range(4)]
        assert check_operand_locality(addrs, cfg.l3_slice)

    def test_group_fail_returns_false(self, cfg):
        assert not check_operand_locality([0x0, 0x40], cfg.l3_slice)

    def test_strict_raises_with_details(self, cfg):
        with pytest.raises(OperandLocalityError) as exc:
            check_operand_locality([0x0, 0x40], cfg.l3_slice, strict=True)
        assert "12" in str(exc.value)


class TestAlignmentRules:
    def test_required_alignment_is_l3(self, cfg):
        bits = required_alignment_bits([cfg.l1d, cfg.l2, cfg.l3_slice])
        assert bits == 12  # one 4 KB page

    def test_portability_rule(self, cfg):
        """A binary compiled for 12-bit alignment runs on caches needing
        <= 12 bits (Section IV-C)."""
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            assert alignment_satisfies(12, level)
        assert not alignment_satisfies(10, cfg.l3_slice)

    def test_page_aligned_pair(self):
        assert page_aligned_pair(0x1100, 0x5100)
        assert not page_aligned_pair(0x1100, 0x5140)
