"""Crypto workload suite: references against published vectors, property
tests of the GF(2) matrix lowering, machine-level bit-exactness on both
backends, and the zero-silent-corruption fault audit."""

import binascii

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    CryptoConfig,
    crc_fold,
    ghash,
    ntt_polymul,
    run_crypto,
    run_crypto_campaign,
)
from repro.apps.crypto import (
    CRYPTO_KERNELS,
    _pack_lsb,
    crc_ref,
    gf128_mul,
    ghash_matrix_rows,
    output_digest,
)
from repro.machine import ComputeCacheMachine
from repro.params import BACKENDS, small_test_machine

SMALL = CryptoConfig(ghash_blocks=8, crc_bytes=128, ntt_n=32)


def small_machine(backend=None) -> ComputeCacheMachine:
    return ComputeCacheMachine(small_test_machine(), backend=backend)


class TestReferences:
    def test_crc32_matches_binascii(self):
        for data in (b"", b"123456789", bytes(range(256)) * 3):
            assert crc_ref(data, 32) == binascii.crc32(data)

    def test_crc32_check_value(self):
        # CRC-32/ISO-HDLC check value.
        assert crc_ref(b"123456789", 32) == 0xCBF43926

    def test_crc64_check_value(self):
        # CRC-64/XZ check value.
        assert crc_ref(b"123456789", 64) == 0x995DC9BBDF1939FA

    def test_ghash_nist_gcm_test_case_2(self):
        # NIST GCM spec test case 2: H = AES_K(0) for the zero key, one
        # ciphertext block, then the 128-bit length block (len(A)=0,
        # len(C)=128).  GHASH must equal the published intermediate.
        h = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        c = bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        length_block = (0).to_bytes(8, "big") + (128).to_bytes(8, "big")
        tag = ghash(h, c + length_block)
        assert tag == bytes.fromhex("f38cbb1ad69223dcc3457ae5b6b0f885")

    def test_gf128_identity(self):
        # x^0 in the MSB-first GCM representation is the top bit.
        one = 1 << 127
        for x in (1, 0xDEADBEEF << 64, (1 << 128) - 1):
            assert gf128_mul(x, one) == x


class TestGF2Properties:
    @given(st.integers(0, (1 << 128) - 1), st.integers(0, (1 << 128) - 1))
    @settings(max_examples=50, deadline=None)
    def test_gf128_commutative(self, x, y):
        assert gf128_mul(x, y) == gf128_mul(y, x)

    @given(st.integers(0, (1 << 128) - 1), st.integers(0, (1 << 128) - 1),
           st.integers(0, (1 << 128) - 1))
    @settings(max_examples=50, deadline=None)
    def test_gf128_distributes_over_xor(self, a, b, c):
        assert (gf128_mul(a ^ b, c)
                == gf128_mul(a, c) ^ gf128_mul(b, c))

    @given(st.binary(min_size=0, max_size=300),
           st.sampled_from((32, 64)))
    @settings(max_examples=60, deadline=None)
    def test_crc_fold_matches_table_reference(self, data, width):
        # The GF(2) matrix lowering (the exact map the CC slabs encode)
        # agrees with the byte-at-a-time table recurrence -- and, for
        # width 32, with the standard library.
        assert crc_fold(data, width) == crc_ref(data, width)
        if width == 32:
            assert crc_fold(data, 32) == binascii.crc32(data)

    @given(st.binary(min_size=16, max_size=16).filter(lambda h: any(h)),
           st.integers(1, 4), st.integers(0, 2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_ghash_matrix_matches_reference(self, h, blocks, seed):
        # Row j of the whole-message matrix, ANDed with the raw message
        # and parity-folded, is tag bit j -- the exact computation the
        # cc_clmul broadcast slabs perform.
        rng = np.random.default_rng(seed)
        msg = rng.integers(0, 256, size=blocks * 16, dtype=np.uint8).tobytes()
        rows = ghash_matrix_rows(h, blocks)
        msg_bits = np.unpackbits(np.frombuffer(msg, dtype=np.uint8),
                                 bitorder="little")
        tag_bits = (rows @ msg_bits) & 1
        assert _pack_lsb(tag_bits) == ghash(h, msg)

    @given(st.integers(0, 2 ** 32), st.sampled_from((2048, 8192, 65536)))
    @settings(max_examples=40, deadline=None)
    def test_ntt_polymul_matches_numpy_convolution(self, seed, q):
        rng = np.random.default_rng(seed)
        n = 32
        a = rng.integers(0, q, size=n, dtype=np.int64)
        b = rng.integers(0, q, size=n, dtype=np.int64)
        full = np.convolve(a, b)
        # Negacyclic reduction: X^n = -1.
        reduced = full[:n].copy()
        reduced[: n - 1] -= full[n:]
        expect = np.mod(reduced, q)
        assert np.array_equal(ntt_polymul(a, b, q), expect)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"ghash_blocks": 3},
        {"ghash_blocks": 6},
        {"crc_bytes": 96},
        {"ntt_n": 48},
        {"ntt_q": 3000},
    ])
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            CryptoConfig(**kwargs)

    def test_rejects_unknown_kernel_and_variant(self):
        with pytest.raises(ValueError):
            run_crypto("sha3", "cc", small_machine(), SMALL)
        with pytest.raises(ValueError):
            run_crypto("ghash", "simd", small_machine(), SMALL)


class TestMachineBitExactness:
    @pytest.mark.parametrize("kernel", CRYPTO_KERNELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cc_and_scalar_match_reference(self, kernel, backend):
        cc = run_crypto(kernel, "cc", small_machine(backend), SMALL)
        scalar = run_crypto(kernel, "scalar", small_machine(backend), SMALL)
        assert cc.stats["matches_reference"]
        assert scalar.stats["matches_reference"]
        assert output_digest(cc) == output_digest(scalar)

    @pytest.mark.parametrize("kernel", CRYPTO_KERNELS)
    def test_backends_bit_identical(self, kernel):
        digests = {
            backend: output_digest(
                run_crypto(kernel, "cc", small_machine(backend), SMALL))
            for backend in BACKENDS
        }
        assert len(set(digests.values())) == 1, digests

    @pytest.mark.parametrize("kernel", CRYPTO_KERNELS)
    def test_cc_lowering_spends_cc_instructions(self, kernel):
        cc = run_crypto(kernel, "cc", small_machine(), SMALL)
        scalar = run_crypto(kernel, "scalar", small_machine(), SMALL)
        assert cc.stats["cc_instructions"] > 0
        assert cc.instructions < scalar.instructions


class TestFaultAudit:
    @pytest.mark.parametrize("kernel", CRYPTO_KERNELS)
    def test_zero_silent_corruption(self, kernel):
        campaign = run_crypto_campaign(kernel)
        assert campaign["injected_total"] > 0, campaign
        assert campaign["detected_total"] > 0, campaign
        assert campaign["silent"] == 0, campaign
        # The machine's recovery story held, so the surviving output must
        # still pass the kernel's own integrity oracle.
        assert campaign["golden_matches_reference"]
        assert campaign["faulty_matches_reference"]
        assert campaign["faulty_digest"] == campaign["golden_digest"]

    def test_campaign_covers_machine_fault_kinds(self):
        campaign = run_crypto_campaign("crc32")
        kinds = {k for k, n in campaign["injected"].items() if n}
        assert any(k.startswith("sram.") for k in kinds), kinds
        assert any(k.startswith("controller.") for k in kinds), kinds
        assert any(k.startswith("directory.") for k in kinds), kinds
