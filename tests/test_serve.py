"""Unit tests of the simulation job service (repro.serve): queue order,
journal persistence, dedup tiers, timeout/retry, backpressure, drain,
progress streaming, and chaos-degraded workers."""

import asyncio
import json

import pytest

from repro.api import FaultPlan, FaultSpec, JobService, RunnerChaos
from repro.bench.points import selftest_point
from repro.errors import QueueFullError, ServeError
from repro.serve.jobs import Job, JobJournal, JobQueue, schedule_key


def run(coro):
    return asyncio.run(coro)


def make_job(seq, priority=0, key="k", provenance=None, job_id=None):
    return Job(id=job_id or f"job{seq}", fn="selftest", kwargs={"value": seq},
               key=key, provenance=provenance or {"backend": "packed"},
               priority=priority, seq=seq)


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        for seq, priority in enumerate([0, 5, 1, 5, 0]):
            queue.push(make_job(seq, priority))
        order = [queue.pop().seq for _ in range(5)]
        assert order == [1, 3, 2, 0, 4]  # priority desc, FIFO within

    def test_pop_empty_is_none(self):
        assert JobQueue().pop() is None

    def test_drain_returns_scheduling_order(self):
        queue = JobQueue()
        jobs = [make_job(seq, priority=seq % 3) for seq in range(7)]
        for job in jobs:
            queue.push(job)
        drained = queue.drain()
        assert drained == sorted(jobs, key=schedule_key)
        assert len(queue) == 0


class TestJobJournal:
    def test_pending_replays_unfinished_submits(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        a, b = make_job(0, job_id="a"), make_job(1, job_id="b")
        journal.record_submit(a)
        journal.record_submit(b)
        a.state = "done"
        journal.record_done(a)
        pending = journal.pending()
        assert [r["id"] for r in pending] == ["b"]
        assert pending[0]["fn"] == "selftest"

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.record_submit(make_job(0, job_id="a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn wri')  # crash mid-append
        assert [r["id"] for r in journal.pending()] == ["a"]

    def test_missing_file_is_empty(self, tmp_path):
        assert JobJournal(tmp_path / "none.jsonl").pending() == []


class TestSubmission:
    def test_compute_then_cache_hit(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            first = await service.submit("selftest", {"value": 7})
            first = await service.wait(first.id, timeout=30)
            second = await service.submit("selftest", {"value": 7})
            await service.stop()
            return first, second

        first, second = run(main())
        assert first.state == "done" and first.source == "computed"
        assert first.result == selftest_point(value=7)
        assert second.state == "done" and second.source == "cache"
        assert second.result == first.result
        assert second.latency_s() is not None

    def test_inflight_coalescing(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            owner = await service.submit("sleep", {"seconds": 0.2, "value": 1})
            dup = await service.submit("sleep", {"seconds": 0.2, "value": 1})
            await service.wait(dup.id, timeout=30)
            await service.stop()
            return service, owner, dup

        service, owner, dup = run(main())
        assert dup.dedup_of == owner.id
        assert dup.source == "coalesced"
        assert dup.result == owner.result
        assert service.stats.coalesced == 1
        assert service.stats.computed == 1

    def test_unknown_fn_and_bad_kwargs_rejected(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            with pytest.raises(ServeError, match="unknown point function"):
                await service.submit("no-such-point")
            with pytest.raises(ServeError, match="JSON-serializable"):
                await service.submit("selftest", {"value": object()})
            assert service.stats.submitted == 0

        run(main())

    def test_backpressure_raises_queue_full(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path, max_queue=2,
                                 use_cache=False)
            # Workers not started: submissions stay queued.
            await service.submit("selftest", {"value": 0})
            await service.submit("selftest", {"value": 1})
            with pytest.raises(QueueFullError):
                await service.submit("selftest", {"value": 2})
            assert service.stats.rejected == 1

        run(main())

    def test_submit_after_drain_rejected(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            await service.stop()
            with pytest.raises(ServeError, match="draining"):
                await service.submit("selftest", {"value": 0})

        run(main())


class TestExecution:
    def test_priority_scheduling_order(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path,
                                 use_cache=False)
            await service.start()
            blocker = await service.submit("sleep",
                                           {"seconds": 0.15, "value": 99})
            low = await service.submit("selftest", {"value": 0}, priority=0)
            high = await service.submit("selftest", {"value": 1}, priority=5)
            mid = await service.submit("selftest", {"value": 2}, priority=1)
            for job in (blocker, low, high, mid):
                await service.wait(job.id, timeout=30)
            await service.stop()
            return low, high, mid

        low, high, mid = run(main())
        assert high.started_t < mid.started_t < low.started_t

    def test_point_failure_fails_job(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            job = await service.submit("selftest", {"value": 3, "fail": True})
            job = await service.wait(job.id, timeout=30)
            await service.stop()
            return service, job

        service, job = run(main())
        assert job.state == "failed"
        assert "asked to fail" in job.error
        assert job.result is None
        assert service.stats.failed == 1 and service.stats.completed == 0

    def test_timeout_retries_then_fails(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path,
                                 timeout_s=0.05, retries=1)
            await service.start()
            job = await service.submit("sleep", {"seconds": 0.4})
            job = await service.wait(job.id, timeout=30)
            await service.stop()
            return service, job

        service, job = run(main())
        assert job.state == "failed"
        assert "timed out" in job.error
        assert job.attempts == 2
        assert service.stats.timeouts == 2
        assert service.stats.retries == 1

    def test_drain_finishes_queued_jobs(self, tmp_path):
        async def main():
            service = JobService(workers=2, cache_dir=tmp_path,
                                 use_cache=False)
            await service.start()
            jobs = [await service.submit("selftest", {"value": v})
                    for v in range(8)]
            await service.stop(drain=True)
            return service, jobs

        service, jobs = run(main())
        assert all(job.state == "done" for job in jobs)
        assert service.stats.completed == 8

    def test_non_drain_stop_fails_pending(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path,
                                 use_cache=False)
            # No start: everything stays queued, then gets failed.
            jobs = [await service.submit("selftest", {"value": v})
                    for v in range(3)]
            await service.stop(drain=False)
            return jobs

        jobs = run(main())
        assert all(job.state == "failed" for job in jobs)
        assert all("stopped" in job.error for job in jobs)


class TestProgressAndEvents:
    def test_progress_records_and_tracer_events(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            job = await service.submit("selftest", {"value": 4})
            records = [r async for r in service.stream_progress(job.id)]
            await service.stop()
            return service, job, records

        service, job, records = run(main())
        phases = [r["phase"] for r in records]
        assert phases[0] == "queued"
        assert phases[-1] == "done"
        assert "start" in phases
        assert all(r["job"] == job.id for r in records)
        events = service.tracer.by_kind("serve.job")
        assert [e.phase for e in events if e.reason == job.id] == phases
        assert all(e.opcode == "selftest" for e in events)

    def test_cache_hit_streams_single_done(self, tmp_path):
        async def main():
            service = JobService(workers=1, cache_dir=tmp_path)
            await service.start()
            first = await service.submit("selftest", {"value": 5})
            await service.wait(first.id, timeout=30)
            second = await service.submit("selftest", {"value": 5})
            records = [r async for r in service.stream_progress(second.id)]
            await service.stop()
            return records

        records = run(main())
        assert [r["phase"] for r in records] == ["done"]
        assert records[0]["outcome"] == "cache"


class TestJournalPersistence:
    def test_unfinished_jobs_survive_restart(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")

        async def crash():
            service = JobService(workers=1, cache_dir=tmp_path / "cache",
                                 journal_path=journal)
            # Never started: accepted jobs are journalled but never run.
            submitted = [await service.submit("selftest", {"value": v})
                         for v in range(3)]
            return [job.id for job in submitted]

        async def recover(ids):
            service = JobService(workers=1, cache_dir=tmp_path / "cache",
                                 journal_path=journal)
            await service.start()
            jobs = [await service.wait(job_id, timeout=30) for job_id in ids]
            await service.stop()
            return jobs

        ids = run(crash())
        jobs = run(recover(ids))
        assert [job.result for job in jobs] == \
            [selftest_point(value=v) for v in range(3)]
        # A third service finds nothing left to redo.
        assert JobJournal(journal).pending() == []

    def test_completed_jobs_not_replayed(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")

        async def main():
            service = JobService(workers=1, cache_dir=tmp_path / "cache",
                                 journal_path=journal)
            await service.start()
            job = await service.submit("selftest", {"value": 9})
            await service.wait(job.id, timeout=30)
            await service.stop()

        run(main())
        assert JobJournal(journal).pending() == []


class TestServiceChaos:
    def test_chaos_crashed_workers_still_serve_correct_results(self, tmp_path):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(kind="runner.crash", probability=1.0),
        ))

        async def main():
            service = JobService(workers=2, cache_dir=tmp_path,
                                 use_cache=False,
                                 chaos=RunnerChaos(plan))
            await service.start()
            jobs = [await service.submit("selftest", {"value": v})
                    for v in range(6)]
            await service.stop(drain=True)
            return service, jobs

        service, jobs = run(main())
        assert all(job.state == "done" for job in jobs)
        assert [job.result for job in jobs] == \
            [selftest_point(value=v) for v in range(6)]
        assert service.runner_stats()["serial_fallbacks"] > 0

    def test_chaos_timeouts_still_serve_correct_results(self, tmp_path):
        plan = FaultPlan(seed=4, specs=(
            FaultSpec(kind="runner.timeout", probability=1.0,
                      max_injections=4),
        ))

        async def main():
            service = JobService(workers=1, cache_dir=tmp_path,
                                 use_cache=False,
                                 chaos=RunnerChaos(plan))
            await service.start()
            jobs = [await service.submit("selftest", {"value": v})
                    for v in range(4)]
            await service.stop(drain=True)
            return service, jobs

        service, jobs = run(main())
        assert all(job.state == "done" for job in jobs)
        stats = service.runner_stats()
        assert stats["timeouts"] > 0
        assert stats["serial_fallbacks"] > 0


class TestStatsDocument:
    def test_to_dict_shape_and_rates(self, tmp_path):
        async def main():
            service = JobService(workers=2, cache_dir=tmp_path)
            await service.start()
            for _ in range(3):
                job = await service.submit("selftest", {"value": 1})
                await service.wait(job.id, timeout=30)
            await service.stop()
            return service

        service = run(main())
        doc = service.to_dict()
        assert doc["schema"] == "repro.serve-stats/1"
        assert set(doc["provenance"]) == \
            {"backend", "code_version", "workload_seeds"}
        assert doc["stats"]["submitted"] == 3
        assert doc["stats"]["computed"] == 1
        assert doc["stats"]["cache_hits"] == 2
        assert doc["stats"]["hit_rate"] == pytest.approx(2 / 3)
        assert doc["stats"]["duplicate_tail_hit_rate"] == pytest.approx(1.0)
        assert "serve-stats:" in service.stats.line()
        json.dumps(doc)  # the /stats endpoint must be serializable
