"""Config serialization, scrub service, and bar-chart renderer tests."""

import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.bench.report import render_bars, render_stacked_bars
from repro.config_io import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)
from repro.core.scrub import ScrubService
from repro.errors import ConfigError
from repro.params import sandybridge_8core, small_test_machine


class TestConfigSerialization:
    def test_round_trip_paper_machine(self):
        cfg = sandybridge_8core()
        rebuilt = config_from_dict(config_to_dict(cfg))
        assert rebuilt == cfg

    def test_round_trip_small_machine(self):
        cfg = small_test_machine()
        assert config_from_json(config_to_json(cfg)) == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = small_test_machine()
        path = str(tmp_path / "machine.json")
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_schema_checked(self):
        doc = config_to_dict(small_test_machine())
        doc["schema"] = "other/9"
        with pytest.raises(ConfigError):
            config_from_dict(doc)

    def test_missing_field_rejected(self):
        doc = config_to_dict(small_test_machine())
        del doc["ring"]
        with pytest.raises(ConfigError):
            config_from_dict(doc)

    def test_invalid_geometry_rejected_on_load(self):
        doc = config_to_dict(small_test_machine())
        doc["l1d"]["size"] = 3000  # not a power of two
        with pytest.raises(ConfigError):
            config_from_dict(doc)

    def test_rebuilt_machine_runs(self, make_bytes):
        cfg = config_from_dict(config_to_dict(small_test_machine()))
        m = ComputeCacheMachine(cfg)
        a, c = m.arena.alloc_colocated(128, 2)
        data = make_bytes(128)
        m.load(a, data)
        m.cc(cc_ops.cc_copy(a, c, 128))
        assert m.peek(c, 128) == data


class TestScrubService:
    @pytest.fixture
    def warm_level(self, make_bytes):
        m = ComputeCacheMachine(small_test_machine())
        addr = m.arena.alloc_page_aligned(512)
        m.load(addr, make_bytes(512))
        m.warm_l3(addr, 512)
        slice_id = m.hierarchy.home_slice(addr, 0)
        return m, m.hierarchy.l3[slice_id], addr

    def test_clean_pass_corrects_nothing(self, warm_level):
        _, level, _ = warm_level
        service = ScrubService(level)
        assert service.protect_resident() >= 8
        report = service.scrub_pass()
        assert report.blocks_checked >= 8
        assert report.corrections == 0

    def test_strike_detected_and_repaired(self, warm_level):
        m, level, addr = warm_level
        service = ScrubService(level)
        service.protect_resident()
        before = level.peek_block(addr)
        service.inject_strike(addr, bit=137)
        assert level.peek_block(addr) != before
        report = service.scrub_pass()
        assert report.corrections == 1
        assert report.corrected_addrs == [addr]
        assert level.peek_block(addr) == before

    def test_multiple_strikes_different_blocks(self, warm_level):
        m, level, addr = warm_level
        service = ScrubService(level)
        service.protect_resident()
        service.inject_strike(addr, bit=3)
        service.inject_strike(addr + 64, bit=200)
        report = service.scrub_pass()
        assert report.corrections == 2

    def test_scrub_charges_energy(self, warm_level):
        m, level, _ = warm_level
        service = ScrubService(level)
        service.protect_resident()
        before = m.ledger.total()
        service.scrub_pass()
        assert m.ledger.total() > before  # the sweep is real traffic

    def test_cc_result_scrubbed_clean(self, warm_level):
        """Scrubbing after in-place ops (the paper's policy) sees clean
        data: in-place computing introduces no errors."""
        m, level, addr = warm_level
        dest = m.arena.alloc_page_aligned(512)
        m.cc(cc_ops.cc_copy(addr, dest, 512))
        service = ScrubService(level)
        service.protect_resident()
        assert service.scrub_pass().corrections == 0


class TestBarCharts:
    def test_render_bars(self):
        text = render_bars({"Base_32": 100.0, "CC_L3": 10.0}, "T", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 1

    def test_render_bars_empty_and_zero(self):
        assert "(empty)" in render_bars({}, "x")
        text = render_bars({"a": 0.0, "b": 2.0})
        assert "|" in text

    def test_stacked_bars_with_legend(self):
        series = {
            "base": {"core": 50.0, "noc": 30.0},
            "cc": {"core": 5.0, "noc": 0.0},
        }
        text = render_stacked_bars(series, "S", width=16)
        assert "legend:" in text
        assert "#=core" in text
        base_line = text.splitlines()[1]
        cc_line = text.splitlines()[2]
        assert base_line.count("#") > cc_line.count("#")
