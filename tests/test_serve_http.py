"""End-to-end tests of the HTTP front end (repro.serve.web) and the load
generator: endpoint semantics over a real socket, NDJSON progress
streaming, service-vs-CLI-serial bit-identity (cold and warm cache), and
a small loadgen run with its lost/duplicated audit."""

import asyncio
import http.client
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import BackgroundServer, LoadgenConfig, Point, PointRunner, \
    run_loadgen
from repro.config_io import config_to_dict
from repro.params import small_test_machine
from repro.serve.loadgen import _build_doc, _Client, _Outcome, \
    build_catalog, percentile, sample_indices, summarize

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def request(url, method, path, body=None):
    host_port = url.split("://", 1)[1]
    conn = http.client.HTTPConnection(host_port, timeout=60)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        conn.close()


def kernel_job():
    """A real (small-machine) simulation point, as submitted over HTTP."""
    return {"fn": "kernel",
            "kwargs": {"kernel": "copy", "config": "cc", "size": 512,
                       "machine": config_to_dict(small_test_machine())}}


class TestEndpoints:
    @pytest.fixture()
    def server(self, tmp_path):
        with BackgroundServer(workers=2, cache_dir=tmp_path) as url:
            yield url

    def test_healthz(self, server):
        status, doc = request(server, "GET", "/healthz")
        assert status == 200
        assert doc == {"ok": True, "draining": False}

    def test_submit_wait_returns_terminal_document(self, server):
        status, doc = request(server, "POST", "/jobs?wait=1",
                              {"fn": "selftest", "kwargs": {"value": 6}})
        assert status == 200
        assert doc["state"] == "done"
        assert doc["result"] == {"value": 6, "doubled": 12}
        assert doc["source"] in ("computed", "cache")
        assert doc["latency_s"] >= 0.0
        assert set(doc["provenance"]) == \
            {"backend", "code_version", "workload_seeds"}

    def test_submit_then_poll(self, server):
        status, doc = request(server, "POST", "/jobs",
                              {"fn": "selftest", "kwargs": {"value": 2}})
        assert status == 202
        job_id = doc["id"]
        for _ in range(200):
            status, doc = request(server, "GET", f"/jobs/{job_id}")
            assert status == 200
            if doc["state"] in ("done", "failed"):
                break
        assert doc["state"] == "done"
        assert doc["result"] == {"value": 2, "doubled": 4}

    def test_unknown_job_404(self, server):
        status, doc = request(server, "GET", "/jobs/deadbeef")
        assert status == 404
        assert "unknown job" in doc["error"]

    def test_bad_submissions_400(self, server):
        status, doc = request(server, "POST", "/jobs", {"fn": "nope"})
        assert status == 400
        assert "unknown point function" in doc["error"]
        status, doc = request(server, "POST", "/jobs", {"notfn": 1})
        assert status == 400

    def test_unknown_route(self, server):
        status, _doc = request(server, "GET", "/nope")
        assert status == 404

    def test_stats_document(self, server):
        request(server, "POST", "/jobs?wait=1",
                {"fn": "selftest", "kwargs": {"value": 1}})
        request(server, "POST", "/jobs?wait=1",
                {"fn": "selftest", "kwargs": {"value": 1}})
        status, doc = request(server, "GET", "/stats")
        assert status == 200
        assert doc["schema"] == "repro.serve-stats/1"
        assert doc["stats"]["submitted"] == 2
        assert doc["stats"]["cache_hits"] == 1

    def test_events_stream_is_ndjson_until_terminal(self, server):
        _status, doc = request(server, "POST", "/jobs",
                               {"fn": "sleep",
                                "kwargs": {"seconds": 0.1, "value": 3}})
        job_id = doc["id"]
        host_port = server.split("://", 1)[1]
        conn = http.client.HTTPConnection(host_port, timeout=60)
        conn.request("GET", f"/jobs/{job_id}/events")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        records = [json.loads(line) for line in response.read().splitlines()]
        conn.close()
        phases = [r["phase"] for r in records]
        assert phases[-1] == "done"
        assert "start" in phases
        assert all(r["job"] == job_id for r in records)

    def test_backpressure_429(self, tmp_path):
        with BackgroundServer(workers=1, cache_dir=tmp_path / "bp",
                              use_cache=False, max_queue=1) as url:
            _s, running = request(url, "POST", "/jobs",
                                  {"fn": "sleep", "kwargs": {"seconds": 0.5}})
            for _ in range(200):
                _s, doc = request(url, "GET", f"/jobs/{running['id']}")
                if doc["state"] == "running":
                    break
            status1, _ = request(url, "POST", "/jobs",
                                 {"fn": "sleep",
                                  "kwargs": {"seconds": 0.5, "value": 1}})
            status2, doc = request(url, "POST", "/jobs",
                                   {"fn": "sleep",
                                    "kwargs": {"seconds": 0.5, "value": 2}})
            assert status1 == 202
            assert status2 == 429
            assert "backpressure" in doc["error"]

    def test_drain_endpoint(self, tmp_path):
        server = BackgroundServer(workers=1, cache_dir=tmp_path / "drain")
        url = server.start()
        try:
            status, doc = request(url, "POST", "/admin/drain")
            assert status == 200 and doc["draining"] is True
            for _ in range(100):
                try:
                    status, doc = request(url, "GET", "/healthz")
                except (OSError, http.client.HTTPException):
                    break  # server socket closed: drained
                if doc.get("draining"):
                    break
        finally:
            server.stop()


class TestBitIdentity:
    """The E2E contract: a job served over HTTP returns JSON
    byte-identical to the same point run serially (the CLI's
    ``--jobs 1`` engine), with and without a warm cache."""

    def serial_bytes(self, job):
        [result] = PointRunner(use_cache=False).run(
            [Point(job["fn"], job["kwargs"])])
        return json.dumps(result, sort_keys=True).encode()

    def test_served_result_identical_to_serial_cold_and_warm(self, tmp_path):
        job = kernel_job()
        expected = self.serial_bytes(job)

        with BackgroundServer(workers=2, cache_dir=tmp_path) as url:
            _s, cold = request(url, "POST", "/jobs?wait=1", job)
        assert cold["state"] == "done" and cold["source"] == "computed"
        assert json.dumps(cold["result"], sort_keys=True).encode() == expected

        # A fresh server over the now-warm cache must serve the same bytes.
        with BackgroundServer(workers=2, cache_dir=tmp_path) as url:
            _s, warm = request(url, "POST", "/jobs?wait=1", job)
        assert warm["state"] == "done" and warm["source"] == "cache"
        assert json.dumps(warm["result"], sort_keys=True).encode() == expected

    def test_served_result_identical_to_fresh_cli_process(self, tmp_path):
        """Same contract against an actual fresh-interpreter serial run
        (the `repro` CLI path), not just an in-process runner."""
        job = kernel_job()
        with BackgroundServer(workers=1, cache_dir=tmp_path) as url:
            _s, served = request(url, "POST", "/jobs?wait=1", job)
        assert served["state"] == "done"

        script = (
            "import json, sys\n"
            "from repro.bench.runner import Point, PointRunner\n"
            "job = json.loads(sys.stdin.read())\n"
            "[result] = PointRunner(use_cache=False).run("
            "[Point(job['fn'], job['kwargs'])])\n"
            "sys.stdout.write(json.dumps(result, sort_keys=True))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], input=json.dumps(job),
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": SRC_ROOT})
        assert proc.returncode == 0, proc.stderr
        assert json.dumps(served["result"], sort_keys=True) == proc.stdout


class TestLoadgen:
    def test_small_burst_zero_lost_zero_duplicated(self, tmp_path):
        cfg = LoadgenConfig(requests=80, concurrency=8, distinct=8,
                            seed=1, cache_dir=str(tmp_path), workers=2)
        doc = asyncio.run(run_loadgen(cfg))
        metrics = doc["metrics"]
        assert doc["schema"] == "repro.bench-serve/1"
        assert metrics["completed"] == 80
        assert metrics["lost"] == 0
        assert metrics["duplicated"] == 0
        assert metrics["inconsistent"] == 0
        assert metrics["server_tail_hit_rate"] >= 0.9
        assert sum(metrics["sources"].values()) == 80
        # Exactly one computation per distinct configuration actually
        # sampled; every repeat must be a cache hit or coalesced.
        assert metrics["sources"]["computed"] == len(set(sample_indices(cfg)))
        assert metrics["latency_ms"]["p50"] <= metrics["latency_ms"]["p99"]
        assert metrics["throughput_jobs_per_s"] > 0
        assert doc["contract"]["passed"] is True
        line = summarize(doc)
        assert "lost=0" in line and "duplicated=0" in line

    def test_catalog_kinds(self):
        selftest = build_catalog(LoadgenConfig(distinct=5))
        assert len(selftest) == 5
        assert all(t["fn"] == "selftest" for t in selftest)
        sleepy = build_catalog(LoadgenConfig(point="sleep", distinct=3,
                                             sleep_ms=20))
        assert all(t["kwargs"]["seconds"] == 0.02 for t in sleepy)
        kernels = build_catalog(LoadgenConfig(point="kernel", distinct=6))
        assert len(kernels) == 6
        assert all("machine" in t["kwargs"] for t in kernels)

    def test_sampling_is_deterministic_and_skewed(self):
        cfg = LoadgenConfig(requests=500, distinct=10, seed=7)
        first = sample_indices(cfg)
        assert first == sample_indices(cfg)
        assert len(first) == 500
        assert set(first) <= set(range(10))
        # Zipf: rank 0 strictly more popular than the tail's last rank.
        assert first.count(0) > first.count(9)
        uniform = sample_indices(LoadgenConfig(requests=500, distinct=10,
                                               seed=7,
                                               distribution="uniform"))
        assert first.count(0) > uniform.count(0)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 50) == 0.0

    def test_requests_issue_fifo_in_sampled_order(self, monkeypatch):
        """Regression: the pending queue must drain FIFO so the issued
        workload is the sampled sequence, not its reverse."""
        issued = []

        async def fake_request(self, method, path, doc=None):
            if method == "GET":
                return 200, {"stats": {}}
            value = doc["kwargs"]["value"]
            issued.append(value)
            return 200, {"state": "done", "result": value,
                         "id": f"job-{len(issued)}", "source": "computed"}

        async def fake_close(self):
            pass

        monkeypatch.setattr(_Client, "request", fake_request)
        monkeypatch.setattr(_Client, "close", fake_close)
        cfg = LoadgenConfig(url="http://stub:1", requests=24, distinct=6,
                            seed=3, concurrency=1)
        doc = asyncio.run(run_loadgen(cfg))
        assert issued == sample_indices(cfg)
        assert doc["metrics"]["lost"] == 0
        assert doc["metrics"]["duplicated"] == 0
        assert doc["audit"] == {"lost_req_nos": [], "duplicated_req_nos": []}

    def test_audit_attributes_lost_and_duplicated_req_nos(self):
        """The audit names the request numbers behind the lost and
        duplicated counters (req_no is carried through each outcome)."""
        def ok(req_no, index, job_id, result):
            return _Outcome(req_no=req_no, index=index, latency_s=0.01,
                            status=200,
                            job={"state": "done", "result": result,
                                 "id": job_id, "source": "computed"})

        outcomes = [
            ok(0, 0, "a", 0),
            ok(1, 1, "b", 1),
            _Outcome(req_no=2, index=2, latency_s=0.01, status=0, job=None,
                     error="connection reset"),
            ok(3, 1, "b", 1),   # response mixed: same job id as req 1
            ok(4, 2, "c", 2),
        ]
        cfg = LoadgenConfig(requests=5, distinct=3)
        doc = _build_doc(cfg, "http://stub:1", outcomes, wall_s=1.0,
                         server_stats=None)
        assert doc["metrics"]["lost"] == 1
        assert doc["metrics"]["duplicated"] == 1
        assert doc["audit"]["lost_req_nos"] == [2]
        assert doc["audit"]["duplicated_req_nos"] == [3]
