"""Assembler, disassembler, and trace-frontend tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ComputeCacheMachine
from repro.asm import assemble, format_instruction, parse
from repro.core.isa import Opcode, cc_and, cc_buz, cc_clmul_bcast, cc_search
from repro.errors import ISAError
from repro.params import small_test_machine
from repro.trace import TraceReader, run_trace


class TestAssembler:
    def test_parse_three_operand(self):
        instr = parse("cc_and 0x1000, 0x2000, 0x3000, 4096")
        assert instr.opcode is Opcode.AND
        assert (instr.src1, instr.src2, instr.dest, instr.size) == (
            0x1000, 0x2000, 0x3000, 4096
        )

    def test_parse_buz_and_copy(self):
        buz = parse("cc_buz 0x40, 128")
        assert buz.opcode is Opcode.BUZ and buz.size == 128
        copy = parse("cc_copy 0x0, 0x1000, 256")
        assert copy.opcode is Opcode.COPY and copy.dest == 0x1000

    def test_parse_clmul_variants(self):
        plain = parse("cc_clmul128 0x0, 0x1000, 0x2000, 512")
        assert plain.lane_bits == 128 and not plain.broadcast_src2
        bcast = parse("cc_clmul256.bcast 0x0, 0x1000, 0x2000, 512")
        assert bcast.lane_bits == 256 and bcast.broadcast_src2

    def test_decimal_and_comments(self):
        instr = parse("cc_cmp 64, 128, 64  # compare one block")
        assert instr.src1 == 64 and instr.size == 64

    def test_errors(self):
        for bad in (
            "cc_frob 0x0, 64",
            "cc_and 0x0, 0x40",          # wrong arity
            "cc_buz",                     # no operands
            "cc_and 0x0, zz, 0x80, 64",   # bad number
            "cc_copy.bcast 0x0, 0x40, 64",
            "cc_clmulXY 0x0, 0x40, 0x80, 64",
        ):
            with pytest.raises(ISAError):
                parse(bad)

    def test_validation_applies(self):
        with pytest.raises(ISAError):
            parse("cc_cmp 0x0, 0x1000, 1024")  # over the cmp limit

    @given(st.sampled_from([
        cc_and(0x1000, 0x2000, 0x3000, 256),
        cc_buz(0x40, 128),
        cc_search(0x0, 0x1000, 512),
        cc_clmul_bcast(0x0, 0x1000, 0x2000, 512, lane_bits=128),
    ]))
    @settings(max_examples=8, deadline=None)
    def test_round_trip(self, instr):
        assert parse(format_instruction(instr)) == instr

    def test_assemble_listing(self):
        listing = """
        # two ops
        cc_buz 0x0, 64
        cc_copy 0x0, 0x1000, 64
        """
        instrs = assemble(listing)
        assert [i.opcode for i in instrs] == [Opcode.BUZ, Opcode.COPY]

    def test_assemble_reports_line(self):
        with pytest.raises(ISAError) as exc:
            assemble("cc_buz 0x0, 64\ncc_frob 1, 2")
        assert "line 2" in str(exc.value)


class TestTraceFrontend:
    def test_data_specs(self):
        reader = TraceReader()
        reader.feed_line("init 0x0, zeros:16")
        reader.feed_line("init 0x10, repeat:0xAB*4")
        reader.feed_line("init 0x20, bytes:deadbeef")
        assert reader.inits == [
            (0, bytes(16)), (16, b"\xAB" * 4), (32, b"\xde\xad\xbe\xef")
        ]

    def test_full_trace_runs_and_computes(self):
        trace = """
        init 0x0,    repeat:0xf0*4096
        init 0x1000, repeat:0x0f*4096
        cc_or 0x0, 0x1000, 0x2000, 4096
        load 0x2000, 8
        fence
        """
        m = ComputeCacheMachine(small_test_machine())
        result = run_trace(trace, m)
        assert result.cc_instructions == 1
        assert result.cycles > 0
        assert m.peek(0x2000, 4096) == b"\xff" * 4096

    def test_load_flags(self):
        reader = TraceReader()
        reader.feed_line("load 0x0, 8, dependent")
        reader.feed_line("load 0x40, 64, streaming")
        instrs = reader.program.instructions
        assert instrs[0].dependent and not instrs[0].streaming
        assert instrs[1].streaming and instrs[1].size == 64

    def test_store_and_simd_events(self):
        trace = """
        store 0x0, bytes:0102030405060708
        simd_store 0x40, zeros:32
        simd_load 0x40
        scalar
        branch
        """
        m = ComputeCacheMachine(small_test_machine())
        result = run_trace(trace, m)
        assert result.instructions == 5
        assert m.peek(0x0, 8) == bytes(range(1, 9))

    def test_bad_lines_report_position(self):
        with pytest.raises(ISAError) as exc:
            run_trace("scalar\nwibble 0x0", ComputeCacheMachine(small_test_machine()))
        assert "line 2" in str(exc.value)

    def test_trace_file(self, tmp_path):
        from repro.trace import run_trace_file

        path = tmp_path / "t.trace"
        path.write_text("init 0x0, zeros:64\nload 0x0, 8\n")
        result = run_trace_file(str(path), ComputeCacheMachine(small_test_machine()))
        assert result.instructions == 1


class TestZeroingApp:
    def test_variants_zero_everything(self):
        from repro.apps.zeroing import make_allocation_trace, run_zeroing

        workload = make_allocation_trace(seed=1, n_regions=6, max_blocks=8)
        for variant in ("base", "base32", "cc"):
            m = ComputeCacheMachine(small_test_machine())
            res = run_zeroing(workload, variant, m)
            assert res.output == 6  # verified zero inside the app

    def test_cc_cheaper_on_both_axes(self):
        from repro.apps.zeroing import make_allocation_trace, run_zeroing

        workload = make_allocation_trace(seed=2, n_regions=4, max_blocks=16)
        m1 = ComputeCacheMachine(small_test_machine())
        base = run_zeroing(workload, "base32", m1)
        m2 = ComputeCacheMachine(small_test_machine())
        cc = run_zeroing(workload, "cc", m2)
        assert cc.cycles < base.cycles
        assert cc.energy.total() < base.energy.total()
        assert cc.instructions < base.instructions / 10

    def test_bad_variant(self):
        from repro.apps.zeroing import make_allocation_trace, run_zeroing

        with pytest.raises(ValueError):
            run_zeroing(make_allocation_trace(3, n_regions=1), "gpu")


class TestVectorCompiler:
    def test_compile_and_run_elementwise(self, make_bytes):
        from repro.compiler import compile_and_run

        m = ComputeCacheMachine(small_test_machine())
        da, db = make_bytes(2048), make_bytes(2048)
        plan = compile_and_run(m, Opcode.XOR, {"a": da, "b": db})
        assert plan.locality_satisfied
        expected = (np.frombuffer(da, np.uint8) ^ np.frombuffer(db, np.uint8)).tobytes()
        assert m.peek(plan.arrays["dest"].addr, 2048) == expected

    def test_tiles_respect_limits(self):
        from repro.compiler import ArrayRef, VectorCompiler

        comp = VectorCompiler(small_test_machine())
        a = ArrayRef("a", 0x0, 8192)
        b = ArrayRef("b", 0x4000, 8192)
        plan = comp.compile_elementwise(Opcode.CMP, a, b, None)
        assert all(i.size <= 512 for i in plan.instructions)
        assert sum(i.size for i in plan.instructions) == 8192

    def test_tiles_never_span_pages(self):
        from repro.compiler import ArrayRef, VectorCompiler

        comp = VectorCompiler(small_test_machine())
        # Deliberately offset base: tiles must shrink at the page boundary.
        a = ArrayRef("a", 0xF80, 4096)
        dest = ArrayRef("d", 0x4F80, 4096)
        plan = comp.compile_elementwise(Opcode.COPY, a, None, dest)
        for instr in plan.instructions:
            assert not instr.spans_page_boundary()

    def test_locality_diagnostics(self):
        from repro.compiler import ArrayRef, VectorCompiler

        comp = VectorCompiler(small_test_machine())
        a = ArrayRef("a", 0x0, 128)
        b = ArrayRef("b", 0x4040, 128)  # different page offset
        dest = ArrayRef("d", 0x8000, 128)
        plan = comp.compile_elementwise(Opcode.AND, a, b, dest)
        assert not plan.locality_satisfied
        assert plan.diagnostics
        assert "WARNING" in plan.listing()

    def test_misplaced_arrays_still_correct(self, make_bytes):
        """Locality failure degrades to near-place, never to wrong data."""
        from repro.compiler import ArrayRef, VectorCompiler

        m = ComputeCacheMachine(small_test_machine())
        da, db = make_bytes(128), make_bytes(128)
        m.load(0x0, da)
        m.load(0x4040, db)
        comp = VectorCompiler(m.config)
        plan = comp.compile_elementwise(
            Opcode.AND,
            ArrayRef("a", 0x0, 128), ArrayRef("b", 0x4040, 128),
            ArrayRef("d", 0x8000, 128),
        )
        results = plan.run(m)
        assert any(r.nearplace_ops for r in results)
        expected = (np.frombuffer(da, np.uint8) & np.frombuffer(db, np.uint8)).tobytes()
        assert m.peek(0x8000, 128) == expected

    def test_compile_search(self):
        from repro.compiler import ArrayRef, VectorCompiler

        comp = VectorCompiler(small_test_machine())
        plan = comp.compile_search(ArrayRef("data", 0x0, 8192), key_addr=0x4000)
        assert all(i.size <= 4096 for i in plan.instructions)
        assert plan.op is Opcode.SEARCH

    def test_size_mismatch_rejected(self):
        from repro.compiler import ArrayRef, VectorCompiler

        comp = VectorCompiler(small_test_machine())
        with pytest.raises(ISAError):
            comp.compile_elementwise(
                Opcode.AND,
                ArrayRef("a", 0x0, 128), ArrayRef("b", 0x1000, 256),
                ArrayRef("d", 0x2000, 128),
            )
