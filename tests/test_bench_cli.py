"""The `repro bench <suite>` dispatcher and its deprecated aliases."""

import json
import warnings

import pytest

from repro.api import BenchSuite, bench_suites
from repro.cli import build_parser, main

EXPECTED_SUITES = ("fig3", "fig7", "fig8", "fig9", "fig10", "fig11",
                   "sweeps", "qdnn", "speed", "streambw", "crypto")


class TestRegistry:
    def test_every_suite_registered(self):
        assert tuple(bench_suites()) == EXPECTED_SUITES

    def test_entries_are_frozen_suites(self):
        for name, suite in bench_suites().items():
            assert isinstance(suite, BenchSuite)
            assert suite.name == name
            assert suite.help
            with pytest.raises(Exception):
                suite.name = "other"

    def test_returns_a_copy(self):
        reg = bench_suites()
        reg.pop("crypto")
        assert "crypto" in bench_suites()

    def test_document_suites_declare_outputs(self):
        reg = bench_suites()
        assert reg["speed"].out_default == "BENCH_speed.json"
        assert reg["streambw"].out_default == "BENCH_streambw.json"
        assert reg["crypto"].out_default == "BENCH_crypto.json"
        assert reg["fig3"].out_default is None


class TestParser:
    def test_bench_requires_a_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "warp-drive"])

    @pytest.mark.parametrize("suite", EXPECTED_SUITES)
    def test_shared_flags_on_both_spellings(self, suite):
        for argv in ([suite], ["bench", suite]):
            args = build_parser().parse_args(
                argv + ["--jobs", "2", "--no-cache", "--backend", "packed",
                        "--seed", "7"])
            assert args.jobs == 2 and args.no_cache
            assert args.backend == "packed" and args.seed == 7

    def test_crypto_defaults(self):
        args = build_parser().parse_args(["bench", "crypto"])
        assert args.kernels == "ghash,crc32,crc64,ntt"
        assert args.ghash_blocks == 64 and args.crc_bytes == 1024
        assert args.ntt_n == 128
        assert args.out == "BENCH_crypto.json"
        assert not args.no_faults

    def test_alias_and_bench_share_suite_flags(self):
        new = build_parser().parse_args(["bench", "fig7", "--size", "512"])
        old = build_parser().parse_args(["fig7", "--size", "512"])
        assert new.size == old.size == 512


class TestDispatch:
    def test_bench_fig3_runs_clean(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["bench", "fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_alias_still_works_but_warns(self, capsys):
        with pytest.warns(DeprecationWarning, match="repro bench fig3"):
            assert main(["fig3"]) == 0
        captured = capsys.readouterr()
        assert "Figure 3" in captured.out
        assert "deprecated" in captured.err

    def test_tee_writes_report_for_print_only_suites(self, tmp_path, capsys):
        out = tmp_path / "fig3.txt"
        assert main(["bench", "fig3", "--out", str(out)]) == 0
        teed = out.read_text()
        assert "Figure 3" in teed
        assert "Figure 3" in capsys.readouterr().out

    def test_bench_crypto_writes_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_crypto.json"
        assert main(["bench", "crypto", "--ghash-blocks", "8",
                     "--crc-bytes", "128", "--ntt-n", "32", "--no-faults",
                     "--no-cache", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.crypto/1"
        assert set(doc["kernels"]) == {"ghash", "crc32", "crc64", "ntt"}
        for kernel in doc["kernels"].values():
            assert kernel["outputs_match"]
            assert kernel["speedup"] > 1.0
        assert doc["contract"]["passed"]
        assert "provenance" in doc and "workload_seeds" in doc["provenance"]
        assert "crypto" in capsys.readouterr().out.lower()
