"""Stateful (model-based) coherence testing with hypothesis.

A RuleBasedStateMachine drives the real hierarchy with an arbitrary
interleaving of per-core reads, writes, CC copies, CC zeroing, evict-
pressure bursts, and CC-prepare calls, against a flat reference model.
Invariants checked continuously: read values, coherent_peek values,
inclusion, SWMR, and directory consistency.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import ComputeCacheMachine, cc_ops
from repro.params import small_test_machine

N_BUFFERS = 4
BUF_BLOCKS = 4
BUF_BYTES = BUF_BLOCKS * 64

cores = st.integers(0, 1)
buffers = st.integers(0, N_BUFFERS - 1)
values = st.integers(0, 255)
offsets = st.integers(0, BUF_BLOCKS - 1)


class CoherenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.m = ComputeCacheMachine(small_test_machine())
        self.bufs = self.m.arena.alloc_colocated(BUF_BYTES, N_BUFFERS)
        self.ref = [bytearray(BUF_BYTES) for _ in range(N_BUFFERS)]
        for i, addr in enumerate(self.bufs):
            seed = bytes([i * 31 + 5]) * BUF_BYTES
            self.m.load(addr, seed)
            self.ref[i][:] = seed
        self.pressure_cursor = self.m.arena.alloc(64 * 1024)

    # -- actions -------------------------------------------------------------

    @rule(core=cores, buf=buffers, block=offsets, value=values)
    def write_block(self, core, buf, block, value):
        data = bytes([value]) * 64
        self.m.write(self.bufs[buf] + block * 64, data, core=core)
        self.ref[buf][block * 64 : (block + 1) * 64] = data

    @rule(core=cores, buf=buffers, block=offsets)
    def read_block(self, core, buf, block):
        out = self.m.read(self.bufs[buf] + block * 64, 64, core=core)
        assert out == bytes(self.ref[buf][block * 64 : (block + 1) * 64])

    @rule(core=cores, src=buffers, dst=buffers)
    def cc_copy(self, core, src, dst):
        if src == dst:
            return
        self.m.cc(cc_ops.cc_copy(self.bufs[src], self.bufs[dst], BUF_BYTES),
                  core=core)
        self.ref[dst][:] = self.ref[src]

    @rule(core=cores, buf=buffers)
    def cc_buz(self, core, buf):
        self.m.cc(cc_ops.cc_buz(self.bufs[buf], BUF_BYTES), core=core)
        self.ref[buf][:] = bytes(BUF_BYTES)

    @rule(core=cores, a=buffers, b=buffers, dst=buffers)
    def cc_xor(self, core, a, b, dst):
        if a == b or a == dst or b == dst:
            return
        self.m.cc(cc_ops.cc_xor(self.bufs[a], self.bufs[b], self.bufs[dst],
                                BUF_BYTES), core=core)
        self.ref[dst][:] = bytes(
            x ^ y for x, y in zip(self.ref[a], self.ref[b])
        )

    @rule(core=cores)
    def eviction_pressure(self, core):
        """Touch conflicting lines to force evictions through the stack."""
        l1 = self.m.config.l1d
        stride = l1.sets * l1.block_size
        for i in range(l1.ways + 1):
            addr = self.pressure_cursor + i * stride
            if addr + 64 <= self.m.config.memory_size:
                self.m.read(addr, 8, core=core)

    @rule(core=cores, buf=buffers, is_dest=st.booleans())
    def cc_prepare_l3(self, core, buf, is_dest):
        """Exercise the controller's operand staging directly."""
        addr = self.bufs[buf]
        self.m.hierarchy.cc_prepare(core, "L3", addr, is_dest=is_dest)
        if is_dest:
            # MODIFIED at L3 with no stale private copies - but the data is
            # still the architectural value.
            assert self.m.peek(addr, 64) == bytes(self.ref[buf][:64])
        self.m.hierarchy.cc_release(core, "L3", addr)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def peek_matches_reference(self):
        for i, addr in enumerate(self.bufs):
            assert self.m.peek(addr, BUF_BYTES) == bytes(self.ref[i]), f"buf {i}"

    @invariant()
    def protocol_invariants(self):
        self.m.hierarchy.check_inclusion()
        self.m.hierarchy.check_single_writer()
        for directory in self.m.hierarchy.directory:
            directory.check_all()


CoherenceMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=18, deadline=None,
)
TestCoherenceStateful = CoherenceMachine.TestCase


def test_long_deterministic_soak():
    """A fixed long interleaving as a cheap regression soak."""
    rng = np.random.default_rng(0xFEED)
    machine = CoherenceMachine()
    actions = [
        machine.write_block, machine.read_block, machine.cc_copy,
        machine.cc_buz, machine.cc_xor, machine.eviction_pressure,
    ]
    for _ in range(150):
        action = actions[int(rng.integers(0, len(actions)))]
        name = action.__name__
        if name == "write_block":
            action(int(rng.integers(0, 2)), int(rng.integers(0, N_BUFFERS)),
                   int(rng.integers(0, BUF_BLOCKS)), int(rng.integers(0, 256)))
        elif name == "read_block":
            action(int(rng.integers(0, 2)), int(rng.integers(0, N_BUFFERS)),
                   int(rng.integers(0, BUF_BLOCKS)))
        elif name in ("cc_copy",):
            action(int(rng.integers(0, 2)), int(rng.integers(0, N_BUFFERS)),
                   int(rng.integers(0, N_BUFFERS)))
        elif name == "cc_buz":
            action(int(rng.integers(0, 2)), int(rng.integers(0, N_BUFFERS)))
        elif name == "cc_xor":
            action(int(rng.integers(0, 2)), int(rng.integers(0, N_BUFFERS)),
                   int(rng.integers(0, N_BUFFERS)), int(rng.integers(0, N_BUFFERS)))
        else:
            action(int(rng.integers(0, 2)))
        machine.peek_matches_reference()
    machine.protocol_invariants()
