"""ECC tests: SECDED correctness, linearity, and the per-op schemes (IV-I)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import bytes_xor
from repro.core.ecc import (
    CacheScrubber,
    EccCodec,
    EccPolicy,
    check_word,
    encode_word,
)
from repro.errors import ECCError

word = st.integers(min_value=0, max_value=2**64 - 1)
block = st.binary(min_size=64, max_size=64)


class TestSECDEDWord:
    @given(word)
    @settings(max_examples=60)
    def test_clean_word_passes(self, w):
        result = check_word(w, encode_word(w))
        assert result.ok and not result.corrected and result.data == w

    @given(word, st.integers(0, 63))
    @settings(max_examples=60)
    def test_single_data_bit_corrected(self, w, bit):
        corrupted = w ^ (1 << bit)
        result = check_word(corrupted, encode_word(w))
        assert result.corrected and result.data == w

    @given(word, st.integers(0, 7))
    @settings(max_examples=40)
    def test_single_check_bit_tolerated(self, w, bit):
        bad_check = encode_word(w) ^ (1 << bit)
        result = check_word(w, bad_check)
        assert result.ok and result.data == w

    @given(word, st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=60)
    def test_double_bit_detected(self, w, b1, b2):
        if b1 == b2:
            return
        corrupted = w ^ (1 << b1) ^ (1 << b2)
        with pytest.raises(ECCError):
            check_word(corrupted, encode_word(w))

    @given(word, word)
    @settings(max_examples=60)
    def test_linearity(self, a, b):
        """ECC(a ^ b) == ECC(a) ^ ECC(b) - the property the in-place
        logical-op check relies on."""
        assert encode_word(a ^ b) == encode_word(a) ^ encode_word(b)


class TestBlockCodec:
    def test_block_round_trip(self, make_bytes):
        codec = EccCodec()
        data = make_bytes(64)
        ecc = codec.encode_block(data)
        assert len(ecc) == 8
        assert codec.check_block(data, ecc) == data

    def test_block_correction(self, make_bytes):
        codec = EccCodec()
        data = bytearray(make_bytes(64))
        ecc = codec.encode_block(bytes(data))
        data[17] ^= 0x04  # single-bit flip in word 2
        corrected = codec.check_block(bytes(data), ecc)
        assert corrected != bytes(data)
        assert codec.check_block(corrected, ecc) == corrected
        assert codec.stats.corrections == 1

    def test_length_mismatch(self):
        codec = EccCodec()
        with pytest.raises(ECCError):
            codec.check_block(bytes(64), bytes(4))


class TestPerOpSchemes:
    def test_copy_scheme(self, make_bytes):
        """cc_copy: destination ECC is simply the source's."""
        codec = EccCodec()
        data = make_bytes(64)
        ecc = codec.encode_block(data)
        assert codec.ecc_for_copy(ecc) == ecc

    def test_buz_scheme(self):
        codec = EccCodec()
        assert codec.ecc_for_buz() == codec.encode_block(bytes(64))

    def test_compare_scheme_agreement(self, make_bytes):
        codec = EccCodec()
        a = make_bytes(64)
        b = make_bytes(64)
        ea, eb = codec.encode_block(a), codec.encode_block(b)
        assert codec.compare_check(a, a, ea, ea) is True
        assert codec.compare_check(a, b, ea, eb) is (a == b)

    def test_compare_scheme_detects_error(self, make_bytes):
        """Data matches but ECCs differ -> a bit error somewhere."""
        codec = EccCodec()
        a = make_bytes(64)
        ea = codec.encode_block(a)
        bad = bytes([ea[0] ^ 1]) + ea[1:]
        with pytest.raises(ECCError):
            codec.compare_check(a, a, ea, bad)

    @given(block, block)
    @settings(max_examples=30)
    def test_xor_check_accepts_clean(self, a, b):
        codec = EccCodec(EccPolicy.XOR_CHECK)
        ea, eb = codec.encode_block(a), codec.encode_block(b)
        result_ecc = codec.xor_check(bytes_xor(a, b), ea, eb)
        assert result_ecc == codec.encode_block(bytes_xor(a, b))

    def test_xor_check_detects_operand_error(self, make_bytes):
        codec = EccCodec(EccPolicy.XOR_CHECK)
        a, b = make_bytes(64), make_bytes(64)
        ea, eb = codec.encode_block(a), codec.encode_block(b)
        corrupted = bytearray(a)
        corrupted[5] ^= 0x10
        with pytest.raises(ECCError):
            codec.xor_check(bytes_xor(bytes(corrupted), b), ea, eb)

    def test_xor_check_counts_transfers(self, make_bytes):
        """The XOR scheme's cost: extra transfers to the ECC unit - the
        reason scrubbing is the preferred policy."""
        codec = EccCodec(EccPolicy.XOR_CHECK)
        a, b = make_bytes(64), make_bytes(64)
        codec.xor_check(bytes_xor(a, b), codec.encode_block(a), codec.encode_block(b))
        assert codec.stats.extra_transfers == 2


class TestScrubber:
    def test_scrub_corrects_soft_error(self, make_bytes):
        codec = EccCodec(EccPolicy.SCRUB)
        scrubber = CacheScrubber(codec)
        original = make_bytes(64)
        scrubber.protect(0x1000, original)
        struck = bytearray(original)
        struck[33] ^= 0x40  # particle strike
        corrected = scrubber.scrub({0x1000: bytes(struck)})
        assert corrected[0x1000] == original
        assert codec.stats.scrub_passes == 1

    def test_unprotected_block_rejected(self):
        scrubber = CacheScrubber(EccCodec())
        with pytest.raises(ECCError):
            scrubber.ecc_of(0x2000)

    def test_protect_updates(self, make_bytes):
        codec = EccCodec()
        scrubber = CacheScrubber(codec)
        d1, d2 = make_bytes(64), make_bytes(64)
        scrubber.protect(0x0, d1)
        scrubber.protect(0x0, d2)
        assert scrubber.ecc_of(0x0) == codec.encode_block(d2)
